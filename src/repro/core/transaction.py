"""In-memory transaction database.

The paper assumes transactions are "evenly distributed among the
processors" (Section III).  :class:`TransactionDB` is the substrate every
algorithm in this package consumes: an immutable, indexable collection of
canonical transactions with helpers for block partitioning (the even
distribution used by CD/DD/IDD/HD) and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from .items import Itemset, validate_itemset

__all__ = ["TransactionDB", "DBStats"]


@dataclass(frozen=True)
class DBStats:
    """Summary statistics of a transaction database."""

    num_transactions: int
    num_items: int
    min_length: int
    max_length: int
    avg_length: float
    total_item_occurrences: int


class TransactionDB:
    """An immutable list of canonical transactions.

    Each transaction is a sorted, duplicate-free tuple of non-negative
    integer items (see :mod:`repro.core.items`).

    Args:
        transactions: iterable of item sequences.  Each is validated and
            canonical order is enforced (raises ``ValueError`` otherwise,
            so malformed input fails loudly at load time rather than
            mis-counting later).
    """

    __slots__ = ("_transactions",)

    def __init__(self, transactions: Iterable[Sequence[int]]):
        self._transactions: List[Itemset] = [
            validate_itemset(t) for t in transactions
        ]

    @classmethod
    def from_canonical(cls, transactions: List[Itemset]) -> "TransactionDB":
        """Build a DB from transactions already known to be canonical.

        Skips per-transaction validation; used by the Quest generator and
        by partitioning, where canonical form is guaranteed by
        construction.
        """
        db = cls.__new__(cls)
        db._transactions = transactions
        return db

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Itemset:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDB):
            return NotImplemented
        return self._transactions == other._transactions

    def __repr__(self) -> str:
        return f"TransactionDB(n={len(self._transactions)})"

    @property
    def transactions(self) -> Sequence[Itemset]:
        """The underlying transaction list (treat as read-only)."""
        return self._transactions

    def item_universe(self) -> Itemset:
        """Return the sorted tuple of all distinct items appearing in the DB."""
        universe: set[int] = set()
        for transaction in self._transactions:
            universe.update(transaction)
        return tuple(sorted(universe))

    def stats(self) -> DBStats:
        """Compute summary statistics for reporting and workload sizing."""
        if not self._transactions:
            return DBStats(0, 0, 0, 0, 0.0, 0)
        lengths = [len(t) for t in self._transactions]
        total = sum(lengths)
        return DBStats(
            num_transactions=len(self._transactions),
            num_items=len(self.item_universe()),
            min_length=min(lengths),
            max_length=max(lengths),
            avg_length=total / len(lengths),
            total_item_occurrences=total,
        )

    def partition(self, num_parts: int) -> List["TransactionDB"]:
        """Split into ``num_parts`` contiguous, near-equal blocks.

        This models the even distribution of transactions over processors
        that all four parallel formulations assume.  Block ``i`` receives
        either ``ceil(n / P)`` or ``floor(n / P)`` transactions, and the
        concatenation of the blocks in order equals the original DB.

        Raises:
            ValueError: if ``num_parts`` is not a positive integer.
        """
        return [
            TransactionDB.from_canonical(self._transactions[lo:hi])
            for lo, hi in self.partition_bounds(num_parts)
        ]

    def partition_bounds(self, num_parts: int) -> List[Tuple[int, int]]:
        """Index ranges ``[lo, hi)`` of the blocks :meth:`partition` makes.

        The shared-memory data plane partitions by *range* into a packed
        store that is encoded exactly once, so blocks are described
        without copying any transactions.  By construction,
        ``partition(p)[i] == db[lo:hi]`` for the ``i``-th bounds pair.

        Raises:
            ValueError: if ``num_parts`` is not a positive integer.
        """
        if num_parts <= 0:
            raise ValueError(f"num_parts must be positive, got {num_parts}")
        n = len(self._transactions)
        base, extra = divmod(n, num_parts)
        bounds: List[Tuple[int, int]] = []
        start = 0
        for i in range(num_parts):
            size = base + (1 if i < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def to_packed(self):
        """Encode into a :class:`~repro.core.packed.PackedDB`.

        The columnar ``(offsets, items)`` form the counting kernels and
        the native pool's shared-memory store consume; the round trip
        ``db.to_packed().to_db() == db`` is exact.
        """
        from .packed import PackedDB

        return PackedDB.pack(self._transactions)

    def size_in_bytes(self, bytes_per_item: int = 4) -> int:
        """Approximate on-disk size of the DB.

        The cost model charges communication and I/O per byte; a
        transaction is modeled as its items at ``bytes_per_item`` each
        plus a 4-byte length header, mirroring a packed binary layout.
        """
        return sum(4 + bytes_per_item * len(t) for t in self._transactions)
