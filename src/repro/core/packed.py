"""Packed columnar transaction store and binary candidate encoding.

The paper's communication argument for Count Distribution is that only
O(|C_k|) counts move per pass — but a naive multiprocessing port pays
far more than that in *serialization*: transaction blocks pickled as
tuple-of-tuples into each worker, candidate lists re-pickled through a
pipe every pass, count vectors unpickled on the way back.  This module
is the encoding layer that removes those costs:

* :class:`PackedDB` — a transaction database (or a block of one) as two
  flat int32 buffers, ``offsets[n + 1]`` and ``items[total]``:
  transaction ``i`` is ``items[offsets[i]:offsets[i + 1]]``.  The
  buffers can be plain :mod:`array` arrays or zero-copy memoryviews
  over a shared-memory segment; either way the counting kernels consume
  ``(offsets, items)`` slices directly, without materializing
  per-transaction tuples.
* a **binary candidate encoding** — one pass's ``C_k`` as a single flat
  int32 buffer of ``len(C_k) * k`` items plus a small header, so a
  candidate broadcast is one binary frame instead of a pickled tuple
  list.
* buffer codecs (:func:`write_packed_into` / :func:`packed_from_buffer`,
  :func:`write_candidates_into` / :func:`candidates_from_bytes`) with
  explicit little-endian headers, used by the native pool to lay the
  store and the per-pass candidate segment out in
  ``multiprocessing.shared_memory`` segments.

Encode/decode is round-trip exact by construction and by test
(``tests/core/test_packed.py``): items are validated to fit int32 at
pack time, so decoding can never alter a value.
"""

from __future__ import annotations

import struct
from array import array
from itertools import chain
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from .items import Itemset

__all__ = [
    "INT32_MAX",
    "PackedDB",
    "pack_candidates",
    "unpack_candidates",
    "packed_nbytes",
    "write_packed_into",
    "packed_from_buffer",
    "candidates_nbytes",
    "write_candidates_into",
    "candidates_from_bytes",
]

INT32_MAX = 2**31 - 1

# A guaranteed-4-byte signed typecode for this platform ('i' everywhere
# that matters, 'l' as a fallback for exotic ABIs).
_I32 = next(tc for tc in ("i", "l", "q") if array(tc).itemsize == 4)

IntBuffer = Union["array[int]", memoryview, Sequence[int]]

# Store layout: <n: int64> <total: int64> <offsets: int32[n + 1]> <items:
# int32[total]>.  Candidate layout: <num: int64> <k: int64> <flat:
# int32[num * k]>.  Headers are explicit little-endian so a buffer
# written by the coordinator decodes identically in any worker.
_STORE_HEADER = struct.Struct("<qq")
_CAND_HEADER = struct.Struct("<qq")


def _check_item(item: int) -> int:
    if not (0 <= item <= INT32_MAX):
        raise ValueError(
            f"item {item!r} does not fit the packed int32 encoding "
            f"(expected 0 <= item <= {INT32_MAX})"
        )
    return item


def _extend_checked(buf: "array[int]", transaction: Sequence[int]) -> None:
    """Append ``transaction`` to an int32 array, validating the range.

    The hot path stays in C: ``min()`` catches negatives, the array's
    own conversion catches overflow past int32.  Only the error path
    re-scans per item, to name the offending value.
    """
    try:
        if transaction and min(transaction) < 0:
            raise OverflowError
        buf.extend(transaction)
    except (OverflowError, TypeError):
        for item in transaction:
            _check_item(item)
        raise  # pragma: no cover - per-item scan always raises first


class PackedDB:
    """Transactions as two flat int32 buffers: ``offsets`` and ``items``.

    ``offsets`` has ``n + 1`` entries with ``offsets[0] == 0``;
    transaction ``i`` occupies ``items[offsets[i]:offsets[i + 1]]``.
    The buffers may be :mod:`array` arrays (owned memory) or int32
    memoryviews over a shared segment (zero-copy); the class never
    copies them.

    Use :meth:`pack` to build from transaction sequences (validates the
    int32 range) and :meth:`from_buffers` to wrap existing buffers
    without re-validation (the shared-memory attach path).
    """

    __slots__ = ("offsets", "items")

    def __init__(self, offsets: IntBuffer, items: IntBuffer):
        if len(offsets) < 1 or offsets[0] != 0:
            raise ValueError(
                "offsets must start with 0 and have num_transactions + 1 "
                f"entries, got {len(offsets)} entries"
            )
        if offsets[-1] != len(items):
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) must equal len(items) "
                f"({len(items)})"
            )
        self.offsets = offsets
        self.items = items

    @classmethod
    def pack(cls, transactions: Iterable[Sequence[int]]) -> "PackedDB":
        """Encode transaction sequences; validates the int32 item range."""
        offsets = array(_I32, [0])
        items = array(_I32)
        total = 0
        for transaction in transactions:
            _extend_checked(items, transaction)
            total += len(transaction)
            if total > INT32_MAX:
                raise ValueError(
                    f"total item count {total} overflows int32 offsets"
                )
            offsets.append(total)
        return cls.from_buffers(offsets, items)

    @classmethod
    def from_buffers(cls, offsets: IntBuffer, items: IntBuffer) -> "PackedDB":
        """Wrap buffers known to be consistent (skips range validation)."""
        db = cls.__new__(cls)
        db.offsets = offsets
        db.items = items
        return db

    # ------------------------------------------------------------------
    # Decode / queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_items(self) -> int:
        """Total item occurrences across all transactions."""
        return len(self.items)

    def transaction(self, index: int) -> Itemset:
        """Decode transaction ``index`` as a canonical tuple."""
        if not 0 <= index < len(self):
            raise IndexError(
                f"transaction index {index} out of range [0, {len(self)})"
            )
        return tuple(self.items[self.offsets[index]:self.offsets[index + 1]])

    def slices(self, lo: int = 0, hi: int | None = None) -> Iterator:
        """Yield zero-copy ``items`` slices for transactions ``[lo, hi)``.

        Each slice is a buffer slice, not a tuple — the counting kernels
        consume these directly.
        """
        if hi is None:
            hi = len(self)
        offsets = self.offsets
        items = self.items
        for i in range(lo, hi):
            yield items[offsets[i]:offsets[i + 1]]

    def unpack(self) -> List[Itemset]:
        """Decode every transaction back into a list of tuples."""
        return [tuple(s) for s in self.slices()]

    def to_db(self):
        """Decode into a :class:`~repro.core.transaction.TransactionDB`.

        The round trip ``db.to_packed().to_db() == db`` is exact.
        """
        from .transaction import TransactionDB

        return TransactionDB.from_canonical(self.unpack())

    def block_bounds(
        self, max_items: int, lo: int = 0, hi: int | None = None
    ) -> List[Tuple[int, int]]:
        """Split transactions ``[lo, hi)`` into contiguous sub-blocks.

        Each block ``(block_lo, block_hi)`` covers at most ``max_items``
        packed items — unless a single transaction alone exceeds the
        budget, in which case it gets a block of its own (a block always
        holds at least one transaction, so the split terminates).  The
        blocks concatenate back to exactly ``[lo, hi)``; this is the
        out-of-core streaming unit: a counting pass touches one block's
        worth of the store at a time instead of the whole range.
        """
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        if hi is None:
            hi = len(self)
        if not 0 <= lo <= hi <= len(self):
            raise ValueError(
                f"block range [{lo}, {hi}) out of bounds for {len(self)} "
                "transactions"
            )
        offsets = self.offsets
        bounds: List[Tuple[int, int]] = []
        start = lo
        while start < hi:
            end = start + 1
            while end < hi and offsets[end + 1] - offsets[start] <= max_items:
                end += 1
            bounds.append((start, end))
            start = end
        return bounds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedDB):
            return NotImplemented
        return (
            list(self.offsets) == list(other.offsets)
            and list(self.items) == list(other.items)
        )

    def __repr__(self) -> str:
        return f"PackedDB(n={len(self)}, total_items={self.total_items})"


# ----------------------------------------------------------------------
# Candidate encoding: C_k as one flat int32 buffer
# ----------------------------------------------------------------------


def pack_candidates(candidates: Sequence[Itemset], k: int) -> "array[int]":
    """Flatten size-``k`` candidates into one int32 buffer of ``n * k``.

    This runs once per pass on the broadcast path, so the whole flatten
    stays in C (one ``extend`` over a chain, one ``min`` for the range
    check); per-candidate Python work happens only on the error path.
    """
    flat = array(_I32)
    try:
        flat.extend(chain.from_iterable(candidates))
        if flat and min(flat) < 0:
            raise OverflowError
    except (OverflowError, TypeError):
        for candidate in candidates:
            for item in candidate:
                _check_item(item)
        raise  # pragma: no cover - the per-item scan always raises first
    # Total-size check: catches a wrong k (and any non-compensating size
    # mix).  Callers pack apriori_gen output, which is uniform by
    # construction.
    if len(flat) != k * len(candidates):
        offender = next(c for c in candidates if len(c) != k)
        raise ValueError(
            f"candidate {offender!r} has size {len(offender)}, expected {k}"
        )
    return flat


def unpack_candidates(flat: IntBuffer, k: int) -> List[Itemset]:
    """Decode a flat candidate buffer back into size-``k`` tuples."""
    if k < 1:
        raise ValueError(f"candidate size k must be >= 1, got {k}")
    if len(flat) % k != 0:
        raise ValueError(
            f"flat candidate buffer of {len(flat)} items is not a "
            f"multiple of k={k}"
        )
    return [tuple(flat[i:i + k]) for i in range(0, len(flat), k)]


# ----------------------------------------------------------------------
# Buffer codecs (shared-memory segment layouts)
# ----------------------------------------------------------------------


def packed_nbytes(packed: PackedDB) -> int:
    """Bytes needed by :func:`write_packed_into` for ``packed``."""
    return (
        _STORE_HEADER.size
        + 4 * (len(packed) + 1)
        + 4 * packed.total_items
    )


def write_packed_into(packed: PackedDB, buf) -> None:
    """Serialize ``packed`` into a writable buffer (e.g. an shm segment)."""
    n = len(packed)
    total = packed.total_items
    _STORE_HEADER.pack_into(buf, 0, n, total)
    lo = _STORE_HEADER.size
    hi = lo + 4 * (n + 1)
    buf[lo:hi] = _as_i32_bytes(packed.offsets)
    buf[hi:hi + 4 * total] = _as_i32_bytes(packed.items)


def packed_from_buffer(buf) -> PackedDB:
    """Wrap a buffer written by :func:`write_packed_into` — zero-copy.

    The returned :class:`PackedDB` holds int32 memoryviews into ``buf``;
    the underlying buffer must outlive it.
    """
    n, total = _STORE_HEADER.unpack_from(buf, 0)
    view = memoryview(buf)
    lo = _STORE_HEADER.size
    hi = lo + 4 * (n + 1)
    offsets = view[lo:hi].cast(_I32)
    items = view[hi:hi + 4 * total].cast(_I32)
    return PackedDB.from_buffers(offsets, items)


def candidates_nbytes(num_candidates: int, k: int) -> int:
    """Bytes needed by :func:`write_candidates_into`."""
    return _CAND_HEADER.size + 4 * num_candidates * k


def write_candidates_into(
    candidates: Sequence[Itemset], k: int, buf
) -> None:
    """Serialize one pass's candidates into a writable buffer."""
    flat = pack_candidates(candidates, k)
    _CAND_HEADER.pack_into(buf, 0, len(candidates), k)
    lo = _CAND_HEADER.size
    buf[lo:lo + 4 * len(flat)] = _as_i32_bytes(flat)


def candidates_from_bytes(data) -> Tuple[int, List[Itemset]]:
    """Decode ``(k, candidates)`` from a candidate buffer's bytes."""
    num, k = _CAND_HEADER.unpack_from(data, 0)
    flat = array(_I32)
    lo = _CAND_HEADER.size
    flat.frombytes(bytes(data[lo:lo + 4 * num * k]))
    return k, unpack_candidates(flat, k)


def _as_i32_bytes(buffer: IntBuffer) -> bytes:
    """Raw little-endian int32 bytes of an array or int32 memoryview."""
    if isinstance(buffer, array):
        return buffer.tobytes()
    if isinstance(buffer, memoryview):
        return buffer.tobytes()
    return array(_I32, buffer).tobytes()
