"""Serial Apriori (paper Section II, Figure 1).

The driver mirrors the paper's pseudo code:

1. ``F1`` = frequent single items (one counting scan);
2. for k = 2, 3, ...: ``Ck = apriori_gen(F(k-1))``; build the candidate
   hash tree; run the subset operation for every transaction; ``Fk`` =
   candidates meeting minimum support; stop when ``Fk`` (or ``Ck``) is
   empty.

Every pass records a :class:`PassTrace` with candidate/frequent counts,
the hash tree shape and the tree's work counters — the raw material both
for the parallel formulations' cost accounting and for the Section IV
model validation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .candidates import generate_candidates
from .hashtree import HashTree, HashTreeStats, TreeShape
from .items import Itemset
from .kernels import make_counter, validate_kernel
from .transaction import TransactionDB

__all__ = ["Apriori", "AprioriResult", "PassTrace", "min_support_count"]


def min_support_count(min_support: float, num_transactions: int) -> int:
    """Translate a fractional support threshold into an absolute count.

    An item-set is frequent when ``sigma(C) / |T| >= min_support``, i.e.
    when its count reaches ``ceil(min_support * |T|)``.  A small epsilon
    guards against float rounding on exact multiples.  The count is at
    least 1 so that empty-support item-sets are never "frequent".
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    return max(1, math.ceil(min_support * num_transactions - 1e-9))


@dataclass
class PassTrace:
    """Record of one Apriori pass.

    Attributes:
        k: item-set size of this pass.
        num_candidates: |Ck| (for k = 1, the number of distinct items).
        num_frequent: |Fk|.
        tree_shape: hash tree shape, ``None`` for pass 1 (no tree).
        tree_stats: subset-operation work counters, ``None`` for pass 1.
    """

    k: int
    num_candidates: int
    num_frequent: int
    tree_shape: Optional[TreeShape] = None
    tree_stats: Optional[HashTreeStats] = None


@dataclass
class AprioriResult:
    """Outcome of a full Apriori run.

    Attributes:
        frequent: union of all Fk, mapping item-set → support count.
        min_support: fractional threshold used.
        min_count: the absolute count threshold it translated to.
        num_transactions: |T|.
        passes: per-pass traces, in pass order.
    """

    frequent: Dict[Itemset, int]
    min_support: float
    min_count: int
    num_transactions: int
    passes: List[PassTrace] = field(default_factory=list)

    def itemsets_of_size(self, k: int) -> Dict[Itemset, int]:
        """Return the frequent item-sets of exactly size ``k``."""
        return {s: c for s, c in self.frequent.items() if len(s) == k}

    def support(self, itemset: Itemset) -> float:
        """Fractional support of a frequent item-set.

        Raises ``KeyError`` for item-sets that are not frequent.
        """
        return self.frequent[itemset] / self.num_transactions

    @property
    def max_size(self) -> int:
        """Size of the largest frequent item-set (0 if none)."""
        return max((len(s) for s in self.frequent), default=0)


class Apriori:
    """Serial Apriori miner.

    Args:
        min_support: fractional minimum support threshold in (0, 1].
        branching: hash tree fan-out.
        leaf_capacity: hash tree leaf capacity (the paper's S).
        max_k: optional cap on the pass number; ``None`` runs to the
            natural fixpoint.  The paper's Figures 13-15 time "size 3
            frequent item sets only", i.e. ``max_k=3``.
        kernel: counting kernel — ``"fast"`` (default: flat-array tree,
            triangular pass-2 counter, no work counters) or
            ``"reference"`` (instrumented object tree; required when the
            per-pass ``tree_stats`` feed the Section IV cost model).
            Both kernels produce identical frequent item-sets and counts.
    """

    def __init__(
        self,
        min_support: float,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        kernel: str = "fast",
    ):
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        self.min_support = min_support
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.kernel = validate_kernel(kernel)

    def mine(self, db: TransactionDB) -> AprioriResult:
        """Mine all frequent item-sets of ``db``."""
        num_transactions = len(db)
        min_count = min_support_count(self.min_support, max(1, num_transactions))
        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=num_transactions,
        )

        frequent_prev = self._pass_one(db, min_count, result)
        k = 2
        while frequent_prev and (self.max_k is None or k <= self.max_k):
            candidates = generate_candidates(frequent_prev)
            if not candidates:
                break
            counter = make_counter(
                k,
                candidates,
                kernel=self.kernel,
                branching=self.branching,
                leaf_capacity=self.leaf_capacity,
            )
            counter.count_database(db)
            frequent_k = counter.frequent(min_count)
            result.frequent.update(frequent_k)
            result.passes.append(
                PassTrace(
                    k=k,
                    num_candidates=len(candidates),
                    num_frequent=len(frequent_k),
                    tree_shape=counter.shape(),
                    tree_stats=(
                        counter.stats if self.kernel == "reference" else None
                    ),
                )
            )
            frequent_prev = list(frequent_k)
            k += 1
        return result

    def build_tree(self, k: int, candidates: Sequence[Itemset]) -> HashTree:
        """Build a reference hash tree for one pass with this miner's
        parameters (instrumentation always available)."""
        tree = HashTree(
            k, branching=self.branching, leaf_capacity=self.leaf_capacity
        )
        tree.insert_all(candidates)
        return tree

    def _pass_one(
        self, db: TransactionDB, min_count: int, result: AprioriResult
    ) -> List[Itemset]:
        """Pass 1: count single items with a flat table (no tree needed)."""
        item_counts: Counter = Counter()
        for transaction in db:
            item_counts.update(transaction)
        frequent_1 = {
            (item,): count
            for item, count in item_counts.items()
            if count >= min_count
        }
        result.frequent.update(frequent_1)
        result.passes.append(
            PassTrace(
                k=1,
                num_candidates=len(item_counts),
                num_frequent=len(frequent_1),
            )
        )
        return sorted(frequent_1)
