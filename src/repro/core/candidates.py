"""Candidate generation — the paper's ``apriori_gen`` (Section II).

Pass ``k`` candidates are produced from the frequent (k-1)-item-sets by
the classic join + prune of Agrawal & Srikant:

* **join**: two frequent (k-1)-sets sharing their first k-2 items are
  merged into a k-set;
* **prune**: a merged k-set survives only if *all* of its (k-1)-subsets
  are frequent (the Apriori anti-monotonicity observation).

Because item-sets are kept canonical (sorted tuples), joining sorted
prefix groups yields candidates already in sorted order, "without any
need for explicit sorting" as the paper notes.

The module also provides the first-item histogram used by IDD's
bin-packing partitioner (Section III-C): the number of candidates
starting with each item, computable *without materializing the
candidates on every processor*.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Set

from .items import Itemset

__all__ = [
    "generate_candidates",
    "generate_candidates_2",
    "first_item_histogram",
    "count_candidates_per_first_item",
]


def generate_candidates(frequent_prev: Iterable[Itemset]) -> List[Itemset]:
    """Run apriori_gen: produce size-k candidates from frequent (k-1)-sets.

    Args:
        frequent_prev: the frequent item-sets of the previous pass; all
            must be canonical tuples of one common size ``k-1 >= 1``.

    Returns:
        Sorted list of canonical size-k candidates that pass the subset
        prune.

    >>> generate_candidates([(1, 2), (1, 3), (2, 3), (2, 4)])
    [(1, 2, 3)]
    """
    frequent_set: Set[Itemset] = set(frequent_prev)
    if not frequent_set:
        return []
    sizes = {len(f) for f in frequent_set}
    if len(sizes) != 1:
        raise ValueError(f"frequent item-sets have mixed sizes: {sorted(sizes)}")
    (k_prev,) = sizes

    if k_prev == 1:
        items = sorted(f[0] for f in frequent_set)
        return [(a, b) for i, a in enumerate(items) for b in items[i + 1:]]

    # Join step: group by (k-2)-prefix; within a group, sorted last items
    # combine pairwise.
    groups: Dict[Itemset, List[int]] = defaultdict(list)
    for itemset in frequent_set:
        groups[itemset[:-1]].append(itemset[-1])

    candidates: List[Itemset] = []
    for prefix_items, lasts in groups.items():
        lasts.sort()
        for i, a in enumerate(lasts):
            for b in lasts[i + 1:]:
                candidate = prefix_items + (a, b)
                if _all_subsets_frequent(candidate, frequent_set):
                    candidates.append(candidate)
    candidates.sort()
    return candidates


def _all_subsets_frequent(candidate: Itemset, frequent_set: Set[Itemset]) -> bool:
    """Prune step: every (k-1)-subset of ``candidate`` must be frequent.

    The two subsets obtained by dropping one of the last two items equal
    the joined parents and are frequent by construction, so only the
    remaining k-2 subsets are tested.
    """
    for drop in range(len(candidate) - 2):
        subset = candidate[:drop] + candidate[drop + 1:]
        if subset not in frequent_set:
            return False
    return True


def generate_candidates_2(frequent_items: Sequence[int]) -> List[Itemset]:
    """Produce C2 directly from frequent single items.

    Equivalent to ``generate_candidates`` on 1-item-sets but takes bare
    items, matching how pass 1 results are usually held.
    """
    items = sorted(frequent_items)
    return [(a, b) for i, a in enumerate(items) for b in items[i + 1:]]


def first_item_histogram(candidates: Iterable[Itemset]) -> Counter:
    """Count candidates per first item (input to IDD's bin packing)."""
    histogram: Counter = Counter()
    for candidate in candidates:
        histogram[candidate[0]] += 1
    return histogram


def count_candidates_per_first_item(frequent_prev: Iterable[Itemset]) -> Counter:
    """First-item histogram of the *next* pass's candidates, pre-materialization.

    Section III-C: "at this time we do not actually store the candidate
    item-sets, but just store the number of candidate item-sets starting
    with each item".  This runs the same join + prune as
    :func:`generate_candidates` but only tallies first items, letting the
    IDD partitioner run before any processor builds its hash tree.
    """
    return first_item_histogram(generate_candidates(frequent_prev))
