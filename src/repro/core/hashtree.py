"""Candidate hash tree (paper Section II, Figures 2, 3 and 8).

The hash tree stores the candidate item-sets of a single Apriori pass and
supports the ``subset`` operation: given a transaction, find and count
every stored candidate contained in it, without comparing the transaction
against all candidates.

Structure (following the paper):

* Internal nodes hold a hash table over items; hashing successive items
  of a candidate walks it down the tree.
* Leaf nodes hold up to ``leaf_capacity`` candidates.  When a leaf at
  depth < k overflows, it is converted into an internal node and its
  candidates are re-hashed one level deeper.  Leaves at depth k may hold
  any number of candidates (all their items are already hashed).
* The ``subset`` traversal starts at the root with every item of the
  transaction as a possible first item of a candidate, and recursively
  hashes the remaining items.  When a leaf is reached, all its candidates
  are checked against the transaction — but each leaf is checked at most
  once per transaction ("if this node is revisited due to a different
  candidate from the same transaction, no checking needs to be
  performed").

Instrumentation: the tree counts hash-step traversals, *distinct* leaf
visits, and candidate comparisons at leaves.  These are exactly the
quantities the paper's Section IV cost model prices (``t_travers``,
``t_check``), and the distinct-leaf-visit counter reproduces the V(C, L)
measurement of Figure 11.

The optional ``root_filter`` argument of :meth:`HashTree.count_transaction`
implements IDD's bitmap pruning (Figure 8): at the root level only, items
for which the local processor owns no candidates are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Dict, Iterable, Iterator, List, Optional, Sequence

from .items import Itemset

__all__ = ["HashTree", "HashTreeStats", "TreeShape"]


@dataclass
class HashTreeStats:
    """Work counters accumulated across ``count_transaction`` calls.

    Attributes:
        transactions_processed: number of transactions run through the tree.
        root_items_scanned: items examined at the root level (bitmap test
            included), whether or not they started a traversal; prices the
            raw transaction scan.
        root_items_expanded: items that passed the root-level filter and
            started a traversal (the paper's per-transaction potential
            candidate fan-out at the root).
        hash_steps: internal-node child descents performed; the unit the
            cost model prices at ``t_travers``.
        leaf_visits: distinct leaves visited, summed over transactions
            (the V quantity of Figure 11 is ``leaf_visits /
            transactions_processed``); the unit priced at ``t_check``.
        candidates_checked: candidate/transaction containment tests
            performed at leaves.
    """

    transactions_processed: int = 0
    root_items_scanned: int = 0
    root_items_expanded: int = 0
    hash_steps: int = 0
    leaf_visits: int = 0
    candidates_checked: int = 0

    def reset(self) -> None:
        self.transactions_processed = 0
        self.root_items_scanned = 0
        self.root_items_expanded = 0
        self.hash_steps = 0
        self.leaf_visits = 0
        self.candidates_checked = 0

    def snapshot(self) -> "HashTreeStats":
        """Return a copy of the current counter values."""
        return HashTreeStats(
            transactions_processed=self.transactions_processed,
            root_items_scanned=self.root_items_scanned,
            root_items_expanded=self.root_items_expanded,
            hash_steps=self.hash_steps,
            leaf_visits=self.leaf_visits,
            candidates_checked=self.candidates_checked,
        )

    def delta_since(self, earlier: "HashTreeStats") -> "HashTreeStats":
        """Return the counter increments accumulated since ``earlier``."""
        return HashTreeStats(
            transactions_processed=self.transactions_processed
            - earlier.transactions_processed,
            root_items_scanned=self.root_items_scanned - earlier.root_items_scanned,
            root_items_expanded=self.root_items_expanded
            - earlier.root_items_expanded,
            hash_steps=self.hash_steps - earlier.hash_steps,
            leaf_visits=self.leaf_visits - earlier.leaf_visits,
            candidates_checked=self.candidates_checked - earlier.candidates_checked,
        )

    def merged_with(self, other: "HashTreeStats") -> "HashTreeStats":
        """Return element-wise sum of two counter sets."""
        return HashTreeStats(
            transactions_processed=self.transactions_processed
            + other.transactions_processed,
            root_items_scanned=self.root_items_scanned + other.root_items_scanned,
            root_items_expanded=self.root_items_expanded + other.root_items_expanded,
            hash_steps=self.hash_steps + other.hash_steps,
            leaf_visits=self.leaf_visits + other.leaf_visits,
            candidates_checked=self.candidates_checked + other.candidates_checked,
        )

    @property
    def avg_leaf_visits_per_transaction(self) -> float:
        """Average number of distinct leaves visited per transaction."""
        if self.transactions_processed == 0:
            return 0.0
        return self.leaf_visits / self.transactions_processed


@dataclass(frozen=True)
class TreeShape:
    """Static shape of a built hash tree (for memory and load estimates)."""

    num_candidates: int
    num_leaves: int
    num_internal: int
    max_depth: int
    avg_candidates_per_leaf: float


class _Node:
    """One hash tree node; a leaf until it overflows, then internal."""

    __slots__ = ("children", "candidates", "stamp")

    def __init__(self) -> None:
        self.children: Optional[Dict[int, "_Node"]] = None
        self.candidates: List[Itemset] = []
        # Per-transaction visit stamp implementing the distinct-leaf
        # memoization; compared against the tree's running counter.
        self.stamp: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """Hash tree over canonical candidate item-sets of uniform size ``k``.

    Args:
        k: size of the candidates this tree stores (the Apriori pass
            number).
        branching: fan-out of internal hash tables; items hash to
            ``item % branching``.
        leaf_capacity: the paper's ``S`` — a leaf above this size splits,
            unless it already sits at depth ``k``.  Adjusting branching
            and capacity tunes the traversal/check balance, as noted in
            Section IV.
    """

    def __init__(self, k: int, branching: int = 64, leaf_capacity: int = 16):
        if k < 1:
            raise ValueError(f"candidate size k must be >= 1, got {k}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self.k = k
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self._root = _Node()
        self._counts: Dict[Itemset, int] = {}
        self._visit_counter = 0
        self.stats = HashTreeStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def insert(self, candidate: Itemset) -> None:
        """Insert one canonical candidate of size ``k``.

        Duplicate inserts are idempotent (the candidate is stored once and
        its count stays at zero).
        """
        if len(candidate) != self.k:
            raise ValueError(
                f"candidate {candidate!r} has size {len(candidate)}, tree expects {self.k}"
            )
        if candidate in self._counts:
            return
        self._counts[candidate] = 0

        node = self._root
        depth = 0
        while not node.is_leaf:
            assert node.children is not None
            bucket = candidate[depth] % self.branching
            child = node.children.get(bucket)
            if child is None:
                child = _Node()
                node.children[bucket] = child
            node = child
            depth += 1

        node.candidates.append(candidate)
        if len(node.candidates) > self.leaf_capacity and depth < self.k:
            self._split(node, depth)

    def insert_all(self, candidates: Iterable[Itemset]) -> None:
        """Insert every candidate from an iterable."""
        for candidate in candidates:
            self.insert(candidate)

    def _split(self, node: _Node, depth: int) -> None:
        """Convert an overflowing leaf into an internal node.

        Candidates are redistributed to children by hashing their item at
        ``depth``.  Splitting recurses if a child immediately overflows
        (possible when many candidates share a hash bucket).
        """
        node.children = {}
        candidates, node.candidates = node.candidates, []
        for candidate in candidates:
            bucket = candidate[depth] % self.branching
            child = node.children.get(bucket)
            if child is None:
                child = _Node()
                node.children[bucket] = child
            child.candidates.append(candidate)
        for child in node.children.values():
            if len(child.candidates) > self.leaf_capacity and depth + 1 < self.k:
                self._split(child, depth + 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._counts

    def candidates(self) -> Iterator[Itemset]:
        """Iterate over stored candidates (insertion order)."""
        return iter(self._counts)

    def get_count(self, candidate: Itemset) -> int:
        """Return the accumulated count of ``candidate``.

        Raises ``KeyError`` if the candidate was never inserted.
        """
        return self._counts[candidate]

    def counts(self) -> Dict[Itemset, int]:
        """Return the full candidate → count mapping (a live view)."""
        return self._counts

    def frequent(self, min_count: int) -> Dict[Itemset, int]:
        """Return candidates whose count meets ``min_count``."""
        return {c: n for c, n in self._counts.items() if n >= min_count}

    def shape(self) -> TreeShape:
        """Compute the static shape of the tree (leaves, depth, fill)."""
        num_leaves = 0
        num_internal = 0
        max_depth = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            max_depth = max(max_depth, depth)
            if node.is_leaf:
                num_leaves += 1
            else:
                num_internal += 1
                assert node.children is not None
                stack.extend((child, depth + 1) for child in node.children.values())
        avg = len(self._counts) / num_leaves if num_leaves else 0.0
        return TreeShape(
            num_candidates=len(self._counts),
            num_leaves=num_leaves,
            num_internal=num_internal,
            max_depth=max_depth,
            avg_candidates_per_leaf=avg,
        )

    # ------------------------------------------------------------------
    # Counting (the subset operation)
    # ------------------------------------------------------------------

    def count_transaction(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Run the subset operation for one canonical transaction.

        Every stored candidate contained in ``transaction`` has its count
        incremented by one.

        Args:
            transaction: sorted, duplicate-free item sequence.
            root_filter: optional membership test applied to items at the
                *root level only*; items not in the filter never start a
                traversal.  This is IDD's first-item bitmap (Figure 8).
                ``None`` disables filtering (serial Apriori, CD, DD).
        """
        stats = self.stats
        stats.transactions_processed += 1
        if len(transaction) < self.k:
            return
        self._visit_counter += 1
        root = self._root
        # Set-based containment makes the leaf checks O(k) each; building
        # it once per transaction amortizes over every leaf visited.
        transaction_set = set(transaction)

        if root.is_leaf:
            # Degenerate tree (few candidates): single leaf holding all
            # candidates; the root filter still applies through the
            # first-item test.
            stats.root_items_scanned += len(transaction) - self.k + 1
            self._check_leaf(root, transaction_set, root_filter)
            return

        assert root.children is not None
        branching = self.branching
        # An item at position i can start a candidate only if at least
        # k - 1 items remain after it.
        last_start = len(transaction) - self.k
        stats.root_items_scanned += last_start + 1
        children = root.children
        for i in range(last_start + 1):
            item = transaction[i]
            if root_filter is not None and item not in root_filter:
                continue
            stats.root_items_expanded += 1
            child = children.get(item % branching)
            if child is not None:
                stats.hash_steps += 1
                self._descend(child, transaction, transaction_set, i + 1, 1)

    def _descend(
        self,
        node: _Node,
        transaction: Sequence[int],
        transaction_set: set,
        pos: int,
        depth: int,
    ) -> None:
        """Recursive hash-tree traversal below the root."""
        if node.children is None:
            self._check_leaf(node, transaction_set, None)
            return
        stats = self.stats
        branching = self.branching
        children = node.children
        # Position i can contribute the (depth+1)-th item of a candidate
        # only if k - depth - 1 items can still follow it.
        last = len(transaction) - (self.k - depth)
        next_depth = depth + 1
        for i in range(pos, last + 1):
            child = children.get(transaction[i] % branching)
            if child is not None:
                stats.hash_steps += 1
                self._descend(child, transaction, transaction_set, i + 1, next_depth)

    def _check_leaf(
        self,
        node: _Node,
        transaction_set: set,
        root_filter: Optional[Container[int]],
    ) -> None:
        """Check all of a leaf's candidates against the transaction once."""
        if node.stamp == self._visit_counter:
            return
        node.stamp = self._visit_counter
        stats = self.stats
        stats.leaf_visits += 1
        counts = self._counts
        issuperset = transaction_set.issuperset
        if root_filter is None:
            stats.candidates_checked += len(node.candidates)
            for candidate in node.candidates:
                if issuperset(candidate):
                    counts[candidate] += 1
            return
        for candidate in node.candidates:
            if candidate[0] not in root_filter:
                continue
            stats.candidates_checked += 1
            if issuperset(candidate):
                counts[candidate] += 1

    def count_database(
        self,
        transactions: Iterable[Sequence[int]],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Run :meth:`count_transaction` for every transaction."""
        for transaction in transactions:
            self.count_transaction(transaction, root_filter)

    def count_packed(
        self,
        packed,
        lo: int = 0,
        hi: Optional[int] = None,
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count transactions ``[lo, hi)`` of a packed columnar store.

        The reference traversal works on any indexable item sequence, so
        it consumes ``(offsets, items)`` slices of a
        :class:`~repro.core.packed.PackedDB` without decoding tuples;
        counts and stats are identical to the decoded-tuple path.
        """
        if hi is None:
            hi = len(packed)
        offsets = packed.offsets
        items = packed.items
        for i in range(lo, hi):
            self.count_transaction(items[offsets[i]:offsets[i + 1]], root_filter)

    # ------------------------------------------------------------------
    # Count-table manipulation (used by the parallel formulations)
    # ------------------------------------------------------------------

    def add_counts(self, other_counts: Dict[Itemset, int]) -> None:
        """Element-wise add a count table into this tree's counts.

        This is the local step of CD's global reduction: candidate sets
        are identical on every processor, so tables add key-by-key.

        Raises ``KeyError`` naming the diverging candidate if
        ``other_counts`` contains a candidate this tree does not store
        (which would indicate the replicas diverged).
        """
        counts = self._counts
        for candidate, count in other_counts.items():
            if candidate not in counts:
                raise KeyError(
                    f"add_counts: candidate {candidate!r} is not stored in "
                    f"this tree (k={self.k}, {len(counts)} candidates) — "
                    "count tables diverged"
                )
            counts[candidate] = counts[candidate] + count

    def reset_counts(self) -> None:
        """Zero all candidate counts (counts only; the tree is kept)."""
        for candidate in self._counts:
            self._counts[candidate] = 0
