"""Counting-kernel selection: ``"reference"`` vs ``"fast"`` vs ``"vertical"``.

The repository keeps three implementations of the paper's subset-counting
kernel:

* **reference** — :class:`repro.core.hashtree.HashTree`: per-node
  objects, recursive traversal, full :class:`HashTreeStats`
  instrumentation.  This is the kernel the Section IV cost model prices
  and every archived figure/table was produced with.
* **fast** — :class:`repro.core.hashtree_flat.FlatHashTree` (flat
  arrays, iterative traversal, no stats on the hot path) plus
  :class:`repro.core.pass2.PairCounter` for the dense pass-2 candidate
  set.  Counts are bit-identical to the reference kernel on every
  input; only the work counters are absent.
* **fast-np** — :class:`repro.core.fastnp.FastNumpyCounter`: the tree
  family's candidates as one flat ``(num, k)`` matrix, counted with
  numpy batch operations over packed per-item bit-matrices
  (:class:`~repro.core.fastnp.PackedBitmaps`, reusable across passes
  via :class:`~repro.core.fastnp.PackedBitmapCache`) — no
  per-transaction or per-candidate interpreter loop.  Counts are
  bit-identical to the reference kernel.  When numpy is absent
  (:data:`repro.core.fastnp.HAVE_NUMPY` is false) the selector quietly
  falls back to the pure-python vertical machinery, which keeps the
  same surface and the same counts.
* **vertical** — :class:`repro.core.vertical.VerticalCounter`:
  Eclat-style per-item TID bitmaps intersected per candidate and
  popcounted with CPython big integers.  No per-transaction traversal
  at all; counts are bit-identical to the reference kernel.  Bitmaps
  are candidate-independent, so long-lived holders (the native pool's
  workers) reuse them across passes via
  :class:`~repro.core.vertical.TidBitmapCache`.

:func:`make_counter` is the single decision point: drivers name a
kernel and get back an object with the shared counting surface
(``count_transaction`` / ``count_database`` / ``count_packed`` /
``counts`` / ``frequent`` / ``shape`` / ``add_counts`` /
``reset_counts``).  ``count_packed`` consumes ``(offsets, items)``
slices of a :class:`~repro.core.packed.PackedDB` — the zero-copy data
plane feeds shared-memory stores straight into either kernel through
:func:`count_packed_into`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from . import fastnp
from .fastnp import FastNumpyCounter
from .hashtree import HashTree
from .hashtree_flat import FlatHashTree
from .items import Itemset
from .pass2 import PairCounter
from .vertical import VerticalCounter

__all__ = [
    "KERNELS",
    "validate_kernel",
    "make_counter",
    "count_packed_into",
    "Counter",
]

KERNELS = ("reference", "fast", "fast-np", "vertical")

Counter = Union[HashTree, FlatHashTree, PairCounter, FastNumpyCounter, VerticalCounter]

# A triangular pass-2 counter allocates one slot per item pair in the
# span of the candidates.  apriori_gen's C2 fills the triangle exactly
# (one candidate per slot); a memory-partitioned chunk or an externally
# filtered pair set may not.  Below this fill ratio the triangle wastes
# memory without buying speed, so the facade falls back to the flat tree.
_PASS2_MIN_FILL = 1 / 3


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if it names a known counting kernel.

    Raises:
        ValueError: for anything other than ``"reference"``, ``"fast"``,
            ``"fast-np"``, or ``"vertical"``.
    """
    if kernel not in KERNELS:
        known = ", ".join(repr(k) for k in KERNELS)
        raise ValueError(f"unknown kernel {kernel!r}; expected one of: {known}")
    return kernel


def make_counter(
    k: int,
    candidates: Sequence[Itemset],
    kernel: str = "fast",
    branching: int = 64,
    leaf_capacity: int = 16,
    needs_root_filter: bool = False,
) -> Counter:
    """Build a support counter over one pass's candidates.

    Args:
        k: candidate size (the pass number).
        candidates: canonical candidates of size ``k``.
        kernel: ``"reference"`` (instrumented object tree), ``"fast"``
            (flat tree; triangular pair counter for a dense C2),
            ``"fast-np"`` (numpy batch counting over the candidate
            matrix; vertical fallback without numpy), or ``"vertical"``
            (TID-bitmap intersections).
        branching / leaf_capacity: hash tree geometry (ignored by the
            pair counter and the matrix/bitmap counters).
        needs_root_filter: the caller will pass ``root_filter`` when
            counting (IDD-style pruning); forces a kernel with a root
            level, since the pair counter has none.  The fast-np and
            vertical kernels filter on first items and qualify.

    Returns:
        A counter exposing the shared counting surface.
    """
    validate_kernel(kernel)
    if kernel == "reference":
        tree = HashTree(k, branching=branching, leaf_capacity=leaf_capacity)
        tree.insert_all(candidates)
        return tree
    if kernel == "fast-np":
        # HAVE_NUMPY is read at call time (not import time) so tests can
        # force the fallback path by monkeypatching the flag.
        if fastnp.HAVE_NUMPY:
            return FastNumpyCounter(k, candidates)
        return VerticalCounter(k, candidates)
    if kernel == "vertical":
        return VerticalCounter(k, candidates)
    if k == 2 and candidates and not needs_root_filter:
        counter = PairCounter(candidates)
        if counter.triangle_size * _PASS2_MIN_FILL <= len(candidates):
            return counter
    tree = FlatHashTree(k, branching=branching, leaf_capacity=leaf_capacity)
    tree.insert_all(candidates)
    return tree


def count_packed_into(
    counter: Counter,
    packed,
    lo: int = 0,
    hi: Optional[int] = None,
    root_filter=None,
) -> None:
    """Count packed-store transactions ``[lo, hi)`` into any counter.

    Every kernel implements ``count_packed`` over a
    :class:`~repro.core.packed.PackedDB`; this facade is the single
    entry point drivers use so a counter from :func:`make_counter` and a
    packed (possibly shared-memory-backed) store compose without the
    driver knowing which kernel it holds.  Counts are bit-identical to
    decoding the slice into a tuple and calling ``count_transaction``.
    """
    counter.count_packed(packed, lo, hi, root_filter)
