"""Condensed representations of a frequent-itemset collection.

Apriori's output is downward closed and can be large; two standard
condensations (introduced in the literature that followed the paper)
are provided as conveniences for downstream users:

* **maximal** frequent item-sets — those with no frequent superset; the
  smallest family that still determines *which* item-sets are frequent;
* **closed** frequent item-sets — those with no superset of equal
  support; the smallest family that also preserves every support count.

Both operate on the plain ``itemset → count`` mapping the miners
produce, so they compose with serial and parallel results alike.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping

from .items import Itemset

__all__ = ["maximal_itemsets", "closed_itemsets", "support_histogram"]


def maximal_itemsets(frequent: Mapping[Itemset, int]) -> Dict[Itemset, int]:
    """Return the frequent item-sets with no frequent proper superset.

    Runs in O(total items) by checking, for each item-set of size s,
    whether any of its extensions by one item is frequent — sufficient
    because the input is downward closed.
    """
    by_size: Dict[int, List[Itemset]] = defaultdict(list)
    for itemset in frequent:
        by_size[len(itemset)].append(itemset)
    if not by_size:
        return {}

    result: Dict[Itemset, int] = {}
    frequent_set = set(frequent)
    items = sorted({i for s in frequent for i in s})
    for size, itemsets in by_size.items():
        for itemset in itemsets:
            member = set(itemset)
            has_frequent_superset = any(
                item not in member
                and tuple(sorted(itemset + (item,))) in frequent_set
                for item in items
            )
            if not has_frequent_superset:
                result[itemset] = frequent[itemset]
    return result


def closed_itemsets(frequent: Mapping[Itemset, int]) -> Dict[Itemset, int]:
    """Return the frequent item-sets with no equal-support superset."""
    frequent_map = dict(frequent)
    items = sorted({i for s in frequent for i in s})
    result: Dict[Itemset, int] = {}
    for itemset, count in frequent_map.items():
        member = set(itemset)
        absorbed = any(
            item not in member
            and frequent_map.get(tuple(sorted(itemset + (item,)))) == count
            for item in items
        )
        if not absorbed:
            result[itemset] = count
    return result


def support_histogram(
    frequent: Mapping[Itemset, int]
) -> Dict[int, int]:
    """Count frequent item-sets per size (the |Fk| row of a run report)."""
    histogram: Dict[int, int] = defaultdict(int)
    for itemset in frequent:
        histogram[len(itemset)] += 1
    return dict(histogram)
