"""Flat-array candidate hash tree — the fast counting kernel.

:class:`FlatHashTree` stores the same hash tree as
:class:`repro.core.hashtree.HashTree` but in contiguous arrays instead
of per-node Python objects:

* one dense child table for all internal nodes (``num_internal *
  branching`` slots, CSR-style: internal node ``v`` owns the slice
  ``[v * branching, (v + 1) * branching)``);
* per-leaf candidate ranges into a single leaf-major candidate list;
* a flat count array indexed by leaf-major candidate position, so the
  innermost loop is ``counts[j] += 1`` with no tuple hashing;
* per-leaf visit stamps in a flat list, implementing the paper's
  "each leaf is checked at most once per transaction" memoization.

The ``subset`` traversal is iterative with an explicit stack — no
recursion, no ``_Node`` attribute loads, and (in the default
uninstrumented mode) no stats-counter writes on the hot path.  This is
the overhead Section IV's ``t_travers``/``t_check`` units abstract
away: the reference tree pays it in Python object machinery, the flat
tree does not.

Structural equivalence is guaranteed by construction: the flat arrays
are produced by *flattening a reference-built* :class:`HashTree`, so
leaf boundaries, split decisions and candidate placement are identical
to the reference kernel for any insertion sequence.  With
``instrumented=True`` the traversal additionally maintains a
:class:`HashTreeStats` whose counters are bit-identical to the
reference tree's — this is what lets the simulated parallel
formulations run on the fast kernel without perturbing the Section IV
cost model.
"""

from __future__ import annotations

from typing import Container, Dict, Iterable, Iterator, List, Optional, Sequence

from .hashtree import HashTree, HashTreeStats, TreeShape
from .items import Itemset

__all__ = ["FlatHashTree"]


class FlatHashTree:
    """Drop-in replacement for :class:`HashTree` backed by flat arrays.

    Args:
        k: size of the candidates this tree stores.
        branching: fan-out of internal hash tables (items hash to
            ``item % branching``).
        leaf_capacity: the paper's ``S``; identical split semantics to
            the reference tree.
        instrumented: maintain :attr:`stats` counters bit-identically to
            the reference tree.  Off by default — the uninstrumented
            traversal is the fast path and leaves :attr:`stats` at zero.
    """

    def __init__(
        self,
        k: int,
        branching: int = 64,
        leaf_capacity: int = 16,
        instrumented: bool = False,
    ):
        if k < 1:
            raise ValueError(f"candidate size k must be >= 1, got {k}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self.k = k
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.instrumented = instrumented
        self.stats = HashTreeStats()

        # Candidate registry in insertion order (candidate -> insertion id).
        self._order: List[Itemset] = []
        self._seen: Dict[Itemset, int] = {}

        self._built = False
        self._visit = 0
        # Flat structure, populated by _build():
        self._num_internal = 0
        self._child: List[int] = []  # dense child table; see _build()
        self._leaf_lo: List[int] = []
        self._leaf_hi: List[int] = []
        self._leaf_stamp: List[int] = []
        self._leaf_cands: List[Itemset] = []  # leaf-major candidate order
        self._counts: List[int] = []  # leaf-major, parallel to _leaf_cands
        self._flat_pos: List[int] = []  # insertion id -> leaf-major position
        self._shape: Optional[TreeShape] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def insert(self, candidate: Itemset) -> None:
        """Register one canonical candidate of size ``k`` (idempotent)."""
        if len(candidate) != self.k:
            raise ValueError(
                f"candidate {candidate!r} has size {len(candidate)}, tree expects {self.k}"
            )
        if candidate in self._seen:
            return
        self._seen[candidate] = len(self._order)
        self._order.append(candidate)
        self._built = False

    def insert_all(self, candidates: Iterable[Itemset]) -> None:
        """Register every candidate from an iterable."""
        for candidate in candidates:
            self.insert(candidate)

    def _build(self) -> None:
        """Flatten a reference-built tree into contiguous arrays.

        Building through :class:`HashTree` pins the structure (split
        decisions, leaf membership) to the reference kernel by
        construction, so the two kernels can never drift apart.  Counts
        accumulated before a rebuild (inserts after counting started)
        are carried over by candidate identity.
        """
        # Snapshot via the *previous* build's arrays directly — calling
        # counts() here would recurse back into _build().
        old_counts = None
        if self._counts:
            old_counts = {
                self._order[i]: self._counts[pos]
                for i, pos in enumerate(self._flat_pos)
            }

        reference = HashTree(
            self.k, branching=self.branching, leaf_capacity=self.leaf_capacity
        )
        for candidate in self._order:
            reference.insert(candidate)
        self._shape = reference.shape()

        branching = self.branching
        internal_nodes: List = []
        leaves: List = []

        root = reference._root
        if root.is_leaf:
            leaves.append(root)
        else:
            internal_nodes.append(root)
            # Breadth-first flattening; child slots of node v live at
            # [v * branching, (v + 1) * branching).
            scan = 0
            while scan < len(internal_nodes):
                node = internal_nodes[scan]
                scan += 1
                assert node.children is not None
                for child in node.children.values():
                    if child.is_leaf:
                        leaves.append(child)
                    else:
                        internal_nodes.append(child)

        self._num_internal = len(internal_nodes)
        # Child-slot encoding: >= 0 is an internal child's slot *base*
        # (child id * branching, so the traversal never multiplies);
        # -1 is empty; <= -2 encodes leaf id ``-2 - value``.
        node_ids = {id(n): i for i, n in enumerate(internal_nodes)}
        leaf_ids = {id(n): i for i, n in enumerate(leaves)}
        child = [-1] * (len(internal_nodes) * branching)
        for v, node in enumerate(internal_nodes):
            base = v * branching
            assert node.children is not None
            for bucket, sub in node.children.items():
                if sub.is_leaf:
                    child[base + bucket] = -2 - leaf_ids[id(sub)]
                else:
                    child[base + bucket] = node_ids[id(sub)] * branching
        self._child = child

        leaf_lo: List[int] = []
        leaf_hi: List[int] = []
        leaf_cands: List[Itemset] = []
        for leaf in leaves:
            leaf_lo.append(len(leaf_cands))
            leaf_cands.extend(leaf.candidates)
            leaf_hi.append(len(leaf_cands))
        self._leaf_lo = leaf_lo
        self._leaf_hi = leaf_hi
        self._leaf_cands = leaf_cands
        self._leaf_stamp = [0] * len(leaves)
        self._visit = 0

        position = {c: j for j, c in enumerate(leaf_cands)}
        self._flat_pos = [position[c] for c in self._order]
        self._counts = [0] * len(leaf_cands)
        if old_counts:
            for candidate, count in old_counts.items():
                self._counts[position[candidate]] = count
        self._built = True

    # ------------------------------------------------------------------
    # Queries (reference-tree API)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._seen

    def candidates(self) -> Iterator[Itemset]:
        """Iterate over stored candidates (insertion order)."""
        return iter(self._order)

    def get_count(self, candidate: Itemset) -> int:
        """Return the accumulated count of ``candidate``.

        Raises ``KeyError`` if the candidate was never inserted.
        """
        if not self._built:
            self._build()
        return self._counts[self._flat_pos[self._seen[candidate]]]

    def counts(self) -> Dict[Itemset, int]:
        """Return the candidate → count mapping (insertion order)."""
        if not self._built:
            self._build()
        counts = self._counts
        flat_pos = self._flat_pos
        return {c: counts[flat_pos[i]] for c, i in self._seen.items()}

    def frequent(self, min_count: int) -> Dict[Itemset, int]:
        """Return candidates whose count meets ``min_count``."""
        if not self._built:
            self._build()
        counts = self._counts
        flat_pos = self._flat_pos
        return {
            c: counts[flat_pos[i]]
            for c, i in self._seen.items()
            if counts[flat_pos[i]] >= min_count
        }

    def shape(self) -> TreeShape:
        """Static shape of the tree — identical to the reference tree's."""
        if not self._built:
            self._build()
        assert self._shape is not None
        return self._shape

    # ------------------------------------------------------------------
    # Counting (the subset operation)
    # ------------------------------------------------------------------

    def count_transaction(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Run the subset operation for one canonical transaction.

        Semantics match :meth:`HashTree.count_transaction`, including
        IDD's root-level ``root_filter`` pruning.
        """
        if not self._built:
            self._build()
        if self.instrumented:
            self._count_instrumented(transaction, root_filter)
            return
        k = self.k
        t = transaction
        n = len(t)
        if n < k:
            return

        counts = self._counts
        cands = self._leaf_cands
        issuper = set(t).issuperset

        if self._num_internal == 0:
            # Degenerate tree: a single root leaf holds every candidate;
            # the root filter applies through the first-item test.  No
            # stamp needed — the leaf is visited exactly once.
            if root_filter is None:
                for j in range(len(cands)):
                    if issuper(cands[j]):
                        counts[j] += 1
            else:
                for j in range(len(cands)):
                    c = cands[j]
                    if c[0] in root_filter and issuper(c):
                        counts[j] += 1
            return

        self._visit += 1
        visit = self._visit
        branching = self.branching
        child = self._child
        stamp = self._leaf_stamp
        lo = self._leaf_lo
        hi = self._leaf_hi
        stack: List = []
        push = stack.append
        pop = stack.pop

        # Root level: item i can start a candidate only if k - 1 items
        # remain after it; the root filter applies here only.
        for i in range(n - k + 1):
            item = t[i]
            if root_filter is not None and item not in root_filter:
                continue
            c = child[item % branching]
            if c >= 0:
                push((c, i + 1, 1))
            elif c != -1:
                leaf = -2 - c
                if stamp[leaf] != visit:
                    stamp[leaf] = visit
                    for j in range(lo[leaf], hi[leaf]):
                        if issuper(cands[j]):
                            counts[j] += 1

        while stack:
            base, pos, depth = pop()
            # Position i can contribute the (depth+1)-th item only if
            # k - depth - 1 items can still follow it.
            last = n - k + depth
            next_depth = depth + 1
            for i in range(pos, last + 1):
                c = child[base + t[i] % branching]
                if c >= 0:
                    push((c, i + 1, next_depth))
                elif c != -1:
                    leaf = -2 - c
                    if stamp[leaf] != visit:
                        stamp[leaf] = visit
                        for j in range(lo[leaf], hi[leaf]):
                            if issuper(cands[j]):
                                counts[j] += 1

    def _count_instrumented(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]],
    ) -> None:
        """Instrumented traversal; counters bit-identical to the reference."""
        stats = self.stats
        stats.transactions_processed += 1
        k = self.k
        t = transaction
        n = len(t)
        if n < k:
            return
        self._visit += 1
        visit = self._visit

        counts = self._counts
        cands = self._leaf_cands
        issuper = set(t).issuperset

        if self._num_internal == 0:
            stats.root_items_scanned += n - k + 1
            stats.leaf_visits += 1
            if root_filter is None:
                stats.candidates_checked += len(cands)
                for j in range(len(cands)):
                    if issuper(cands[j]):
                        counts[j] += 1
            else:
                for j in range(len(cands)):
                    c = cands[j]
                    if c[0] not in root_filter:
                        continue
                    stats.candidates_checked += 1
                    if issuper(c):
                        counts[j] += 1
            return

        branching = self.branching
        child = self._child
        stamp = self._leaf_stamp
        lo = self._leaf_lo
        hi = self._leaf_hi
        stack: List = []
        push = stack.append
        pop = stack.pop

        last_root = n - k
        stats.root_items_scanned += last_root + 1
        for i in range(last_root + 1):
            item = t[i]
            if root_filter is not None and item not in root_filter:
                continue
            stats.root_items_expanded += 1
            c = child[item % branching]
            if c == -1:
                continue
            stats.hash_steps += 1
            if c >= 0:
                push((c, i + 1, 1))
            else:
                leaf = -2 - c
                if stamp[leaf] != visit:
                    stamp[leaf] = visit
                    stats.leaf_visits += 1
                    stats.candidates_checked += hi[leaf] - lo[leaf]
                    for j in range(lo[leaf], hi[leaf]):
                        if issuper(cands[j]):
                            counts[j] += 1

        while stack:
            base, pos, depth = pop()
            last = n - k + depth
            next_depth = depth + 1
            for i in range(pos, last + 1):
                c = child[base + t[i] % branching]
                if c == -1:
                    continue
                stats.hash_steps += 1
                if c >= 0:
                    push((c, i + 1, next_depth))
                else:
                    leaf = -2 - c
                    if stamp[leaf] != visit:
                        stamp[leaf] = visit
                        stats.leaf_visits += 1
                        stats.candidates_checked += hi[leaf] - lo[leaf]
                        for j in range(lo[leaf], hi[leaf]):
                            if issuper(cands[j]):
                                counts[j] += 1

    def count_database(
        self,
        transactions: Iterable[Sequence[int]],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Run :meth:`count_transaction` for every transaction."""
        count_transaction = self.count_transaction
        for transaction in transactions:
            count_transaction(transaction, root_filter)

    def count_packed(
        self,
        packed,
        lo: int = 0,
        hi: Optional[int] = None,
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count transactions ``[lo, hi)`` of a packed columnar store.

        Consumes ``(offsets, items)`` slices of a
        :class:`~repro.core.packed.PackedDB` directly — when the store
        is memoryview-backed (the shared-memory data plane) no
        per-transaction tuple is ever materialized.  Counts are
        identical to feeding the decoded tuples through
        :meth:`count_transaction`, because the traversal only indexes
        and iterates the slice.
        """
        if hi is None:
            hi = len(packed)
        offsets = packed.offsets
        items = packed.items
        count_transaction = self.count_transaction
        for i in range(lo, hi):
            count_transaction(items[offsets[i]:offsets[i + 1]], root_filter)

    # ------------------------------------------------------------------
    # Count-table manipulation (used by the parallel formulations)
    # ------------------------------------------------------------------

    def add_counts(self, other_counts: Dict[Itemset, int]) -> None:
        """Element-wise add a count table into this tree's counts.

        Raises ``KeyError`` naming the diverging candidate if
        ``other_counts`` contains a candidate this tree does not store.
        """
        if not self._built:
            self._build()
        counts = self._counts
        flat_pos = self._flat_pos
        seen = self._seen
        for candidate, count in other_counts.items():
            index = seen.get(candidate)
            if index is None:
                raise KeyError(
                    f"add_counts: candidate {candidate!r} is not stored in "
                    f"this tree (k={self.k}, {len(self._order)} candidates) — "
                    "count tables diverged"
                )
            counts[flat_pos[index]] += count

    def reset_counts(self) -> None:
        """Zero all candidate counts (counts only; the tree is kept)."""
        if self._built:
            self._counts = [0] * len(self._counts)
