"""Vertical TID-bitmap counting kernel (Eclat-style, zero dependencies).

The hash-tree kernels count by walking every transaction through a tree
of candidates — a per-transaction Python loop that dominates wall time
once coordinator overhead is gone.  The vertical kernel inverts the
layout instead: one pass over the packed columnar store builds a
*transaction-id bitmap* per item (bit ``t`` set iff transaction ``t``
contains the item), and a candidate's support is then the popcount of
the AND of its items' bitmaps.

Both the AND and the popcount run on CPython big integers — C loops
over machine words — so the per-transaction interpreter loop disappears
from the counting hot path entirely.  Two further properties make the
kernel cheap in the parallel formulations:

* **Bitmaps are pass-independent.**  They depend only on the data
  range, not on ``k`` or the candidates, so a worker builds them once
  (first pass over its block) and reuses them for every later pass via
  :class:`TidBitmapCache`.  After a respawn or adoption the cache is
  simply cold for the new holdings and rebuilt on the next count — no
  bitmap state needs to survive a crash.
* **Sorted candidates share prefixes.**  Counting in sorted order with
  a prefix-intersection stack amortizes the ANDs: adjacent candidates
  of one apriori_gen batch usually differ only in their last item, so
  most candidates cost a single AND plus a single popcount.

Counts are bit-identical to :class:`~repro.core.hashtree.HashTree` on
every input (property-tested in ``tests/core/test_vertical.py``): a
candidate's bit is set for exactly the transactions whose item *set*
contains all its items, which is precisely the tree's superset test.
"""

from __future__ import annotations

import time
from typing import (
    Container,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .hashtree import TreeShape
from .items import Itemset

__all__ = ["TidBitmaps", "TidBitmapCache", "VerticalCounter"]

# Single-byte masks for the bytearray bit-set loop.  Building bits in a
# bytearray and converting once via int.from_bytes is O(total items);
# or-ing ``1 << t`` into a growing big integer would be quadratic.
_BIT = tuple(1 << b for b in range(8))


class TidBitmaps:
    """Per-item transaction-id bitmaps over one range of transactions.

    Bit ``t`` of ``bits[item]`` is set iff relative transaction ``t``
    of the source range contains ``item``.  Items absent from the range
    have no entry (their bitmap is the integer 0).
    """

    __slots__ = ("bits", "num_transactions", "build_s")

    def __init__(
        self,
        bits: Dict[int, int],
        num_transactions: int,
        build_s: float = 0.0,
    ):
        self.bits = bits
        self.num_transactions = num_transactions
        self.build_s = build_s

    @classmethod
    def from_packed(
        cls, packed, lo: int = 0, hi: Optional[int] = None
    ) -> "TidBitmaps":
        """Build bitmaps from transactions ``[lo, hi)`` of a packed store.

        One pass over the packed int32 columns; works identically for
        list-backed and shared-memory ``memoryview``-backed stores.
        """
        started = time.perf_counter()
        if hi is None:
            hi = len(packed)
        offsets = packed.offsets
        items = packed.items
        n = hi - lo
        nbytes = (n + 7) >> 3
        buffers: Dict[int, bytearray] = {}
        get = buffers.get
        bit = _BIT
        for t in range(n):
            byte = t >> 3
            mask = bit[t & 7]
            row = lo + t
            for item in items[offsets[row]:offsets[row + 1]]:
                buf = get(item)
                if buf is None:
                    buf = bytearray(nbytes)
                    buffers[item] = buf
                buf[byte] |= mask
        bits = {
            item: int.from_bytes(buf, "little")
            for item, buf in buffers.items()
        }
        return cls(bits, n, time.perf_counter() - started)

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Sequence[int]]
    ) -> "TidBitmaps":
        """Build bitmaps from an iterable of item sequences."""
        started = time.perf_counter()
        buffers: Dict[int, bytearray] = {}
        get = buffers.get
        bit = _BIT
        n = 0
        for t, transaction in enumerate(transactions):
            byte = t >> 3
            mask = bit[t & 7]
            for item in transaction:
                buf = get(item)
                if buf is None:
                    buf = bytearray(byte + 64)
                    buffers[item] = buf
                elif byte >= len(buf):
                    buf.extend(bytes(byte + 64 - len(buf)))
                buf[byte] |= mask
            n = t + 1
        bits = {
            item: int.from_bytes(buf, "little")
            for item, buf in buffers.items()
        }
        return cls(bits, n, time.perf_counter() - started)

    def bits_for(self, item: int) -> int:
        """Bitmap of ``item`` (0 when absent from the range)."""
        return self.bits.get(item, 0)


class TidBitmapCache:
    """Per-process bitmap cache, keyed on the data a worker holds.

    Native-pool workers persist across passes, but the candidates (and
    hence the counters) are rebuilt every pass.  The cache lives in the
    worker loop instead and hands each pass's counter the bitmaps built
    on the first pass over the same range.  Entries pin their source
    object (the packed store or transaction block), so the ``id()`` keys
    cannot be recycled while an entry is alive.
    """

    def __init__(self) -> None:
        self._packed: Dict[Tuple[int, int, int], Tuple[object, TidBitmaps]] = {}
        self._blocks: Dict[int, Tuple[object, TidBitmaps]] = {}

    def for_packed(
        self, packed, lo: int = 0, hi: Optional[int] = None
    ) -> TidBitmaps:
        """Bitmaps for packed range ``[lo, hi)``, built at most once."""
        if hi is None:
            hi = len(packed)
        key = (id(packed), lo, hi)
        entry = self._packed.get(key)
        if entry is None or entry[0] is not packed:
            entry = (packed, TidBitmaps.from_packed(packed, lo, hi))
            self._packed[key] = entry
        return entry[1]

    def for_block(self, block: Sequence[Sequence[int]]) -> TidBitmaps:
        """Bitmaps for a transaction block, built at most once."""
        key = id(block)
        entry = self._blocks.get(key)
        if entry is None or entry[0] is not block:
            entry = (block, TidBitmaps.from_transactions(block))
            self._blocks[key] = entry
        return entry[1]

    def clear(self) -> None:
        self._packed.clear()
        self._blocks.clear()


class VerticalCounter:
    """Support counter over TID-bitmap intersections.

    The public surface mirrors :class:`HashTree` /
    :class:`~repro.core.pass2.PairCounter` so the kernel facade can hand
    any of them to the same driver code.  Counts accumulate across
    ``count_*`` calls, so summing disjoint ranges equals counting the
    whole store (the CD reduction invariant).

    Attributes:
        build_s: seconds spent building (or fetching) bitmaps across
            all ``count_packed`` / ``count_database`` calls.  Cache hits
            cost ~0 here, which is exactly what the pass overheads
            should show.
        intersect_s: seconds spent intersecting and popcounting.
    """

    def __init__(self, k: int, candidates: Sequence[Itemset] = ()):
        if k < 1:
            raise ValueError(f"candidate size must be >= 1, got {k}")
        self.k = k
        self._index: Dict[Itemset, int] = {}
        self._counts: List[int] = []
        self._sorted: Optional[List[Tuple[Itemset, int]]] = None
        self._cache: Optional[TidBitmapCache] = None
        self.build_s = 0.0
        self.intersect_s = 0.0
        self.insert_all(candidates)

    # ------------------------------------------------------------------
    # Candidate storage
    # ------------------------------------------------------------------

    def insert(self, candidate: Itemset) -> None:
        """Store a canonical size-``k`` candidate (duplicates ignored)."""
        if len(candidate) != self.k:
            raise ValueError(
                f"candidate {candidate!r} has size {len(candidate)}, "
                f"expected {self.k}"
            )
        if candidate not in self._index:
            self._index[candidate] = len(self._counts)
            self._counts.append(0)
            self._sorted = None

    def insert_all(self, candidates: Iterable[Itemset]) -> None:
        for candidate in candidates:
            self.insert(candidate)

    def use_cache(self, cache: Optional[TidBitmapCache]) -> None:
        """Fetch bitmaps through ``cache`` instead of building per call."""
        self._cache = cache

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._index

    def candidates(self) -> Iterator[Itemset]:
        """Iterate over stored candidates (insertion order)."""
        return iter(self._index)

    def get_count(self, candidate: Itemset) -> int:
        return self._counts[self._index[candidate]]

    def counts(self) -> Dict[Itemset, int]:
        counts = self._counts
        return {c: counts[i] for c, i in self._index.items()}

    def frequent(self, min_count: int) -> Dict[Itemset, int]:
        counts = self._counts
        return {
            c: counts[i]
            for c, i in self._index.items()
            if counts[i] >= min_count
        }

    def shape(self) -> TreeShape:
        """Degenerate shape: the bitmap table is one flat 'leaf'."""
        num = len(self._index)
        return TreeShape(
            num_candidates=num,
            num_leaves=1,
            num_internal=0,
            max_depth=0,
            avg_candidates_per_leaf=float(num),
        )

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def _ordered(self) -> List[Tuple[Itemset, int]]:
        if self._sorted is None:
            self._sorted = sorted(self._index.items())
        return self._sorted

    def count_bitmaps(
        self,
        bitmaps: TidBitmaps,
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Accumulate each candidate's popcount over ``bitmaps``.

        ``root_filter`` keeps the hash-tree contract: only candidates
        whose first item is in the filter are counted (IDD ownership —
        the others' counts are left untouched).
        """
        started = time.perf_counter()
        bits = bitmaps.bits
        counts = self._counts
        # Prefix-intersection stack: stack[d] holds the AND of the
        # current candidate's first d+1 item bitmaps.  Sorted order
        # maximizes shared prefixes between neighbours.
        stack: List[int] = []
        prev: Itemset = ()
        for candidate, slot in self._ordered():
            if root_filter is not None and candidate[0] not in root_filter:
                prev = ()
                del stack[:]
                continue
            depth = 0
            limit = min(len(prev), len(candidate) - 1)
            while depth < limit and prev[depth] == candidate[depth]:
                depth += 1
            del stack[depth:]
            acc = stack[depth - 1] if depth else -1
            for j in range(depth, len(candidate)):
                if acc:
                    acc &= bits.get(candidate[j], 0)
                stack.append(acc)
            prev = candidate
            if acc > 0:
                counts[slot] += acc.bit_count()
        self.intersect_s += time.perf_counter() - started

    def count_packed(
        self,
        packed,
        lo: int = 0,
        hi: Optional[int] = None,
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count transactions ``[lo, hi)`` of a packed columnar store."""
        if hi is None:
            hi = len(packed)
        started = time.perf_counter()
        if self._cache is not None:
            bitmaps = self._cache.for_packed(packed, lo, hi)
        else:
            bitmaps = TidBitmaps.from_packed(packed, lo, hi)
        self.build_s += time.perf_counter() - started
        self.count_bitmaps(bitmaps, root_filter)

    def count_database(
        self,
        transactions: Iterable[Sequence[int]],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Build (or fetch) bitmaps for ``transactions`` and count."""
        started = time.perf_counter()
        if self._cache is not None and isinstance(transactions, (list, tuple)):
            bitmaps = self._cache.for_block(transactions)
        else:
            bitmaps = TidBitmaps.from_transactions(transactions)
        self.build_s += time.perf_counter() - started
        self.count_bitmaps(bitmaps, root_filter)

    def count_transaction(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count one transaction (API-compat fallback; set-superset).

        Single transactions have no bitmap to amortize, so this is the
        direct subset test — still bit-identical to the tree kernels.
        """
        present = set(transaction)
        counts = self._counts
        for candidate, slot in self._index.items():
            if root_filter is not None and candidate[0] not in root_filter:
                continue
            if present.issuperset(candidate):
                counts[slot] += 1

    # ------------------------------------------------------------------
    # Count-table manipulation
    # ------------------------------------------------------------------

    def add_counts(self, other_counts: Dict[Itemset, int]) -> None:
        """Element-wise add a count table into this counter's counts.

        Raises ``KeyError`` naming the diverging candidate if
        ``other_counts`` contains a candidate this counter does not
        store.
        """
        counts = self._counts
        index = self._index
        for candidate, count in other_counts.items():
            slot = index.get(candidate)
            if slot is None:
                raise KeyError(
                    f"add_counts: candidate {candidate!r} is not stored in "
                    f"this vertical counter ({len(index)} candidates) — "
                    "count tables diverged"
                )
            counts[slot] += count

    def reset_counts(self) -> None:
        """Zero all counts (candidates and cache wiring are kept)."""
        self._counts = [0] * len(self._counts)
