"""Specialized pass-2 counter: triangular pair counting without a tree.

Pass 2 has the largest candidate set of an Apriori run (|C2| =
|F1| * (|F1| - 1) / 2 — every pair of frequent items survives
apriori_gen's prune), which makes it the pass where hash-tree overhead
hurts most.  But C2's regular structure admits a much cheaper counter:
map each frequent item to its rank, and count *every* co-occurring pair
of ranked items into a flat triangular array with one add per pair — no
hashing, no traversal, no leaf checks.  Candidate counts are then read
off the triangle by rank arithmetic.

This is the classic "use a triangular array for pass 2" optimization of
Park et al. and the Hadoop Apriori studies; it produces counts
bit-identical to the hash tree because canonical transactions are
sorted and duplicate-free, so each candidate pair is generated at most
once per transaction.

The counter is only advantageous when the candidate pairs are *dense*
in the item universe they span (true for apriori_gen's C2).  For sparse
pair sets — e.g. a memory-partitioned chunk of C2 — the triangle wastes
memory and :func:`repro.core.kernels.make_counter` falls back to the
flat hash tree.
"""

from __future__ import annotations

from typing import Container, Dict, Iterable, Iterator, List, Optional, Sequence

from .hashtree import TreeShape
from .items import Itemset

__all__ = ["PairCounter"]


class PairCounter:
    """Triangular-array support counter for size-2 candidates.

    Args:
        candidates: canonical size-2 candidates (sorted tuples).

    The public counting/query surface mirrors :class:`HashTree` so the
    kernel facade can hand either to the same driver code.
    """

    k = 2

    def __init__(self, candidates: Sequence[Itemset]):
        items: set = set()
        for candidate in candidates:
            if len(candidate) != 2:
                raise ValueError(
                    f"candidate {candidate!r} has size {len(candidate)}, "
                    "PairCounter expects size 2"
                )
            items.add(candidate[0])
            items.add(candidate[1])
        ranked = sorted(items)
        n = len(ranked)
        self._rank: Dict[int, int] = {item: r for r, item in enumerate(ranked)}
        # Triangle layout: pair of ranks (a < b) lives at offset[a] + b,
        # where row a occupies n - a - 1 slots.
        self._offset: List[int] = [
            a * n - (a * (a + 1)) // 2 - a - 1 for a in range(n)
        ]
        self._tri: List[int] = [0] * (n * (n - 1) // 2)
        self._index: Dict[Itemset, int] = {}
        offset = self._offset
        rank = self._rank
        for candidate in candidates:
            if candidate not in self._index:
                self._index[candidate] = (
                    offset[rank[candidate[0]]] + rank[candidate[1]]
                )

    @property
    def triangle_size(self) -> int:
        """Number of triangle slots (density guard for the facade)."""
        return len(self._tri)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._index

    def candidates(self) -> Iterator[Itemset]:
        """Iterate over stored candidates (insertion order)."""
        return iter(self._index)

    def get_count(self, candidate: Itemset) -> int:
        """Return the accumulated count of ``candidate``."""
        return self._tri[self._index[candidate]]

    def counts(self) -> Dict[Itemset, int]:
        """Return the candidate → count mapping (insertion order)."""
        tri = self._tri
        return {c: tri[i] for c, i in self._index.items()}

    def frequent(self, min_count: int) -> Dict[Itemset, int]:
        """Return candidates whose count meets ``min_count``."""
        tri = self._tri
        return {
            c: tri[i] for c, i in self._index.items() if tri[i] >= min_count
        }

    def shape(self) -> TreeShape:
        """Degenerate shape: the triangle is one flat 'leaf' of pairs."""
        num = len(self._index)
        return TreeShape(
            num_candidates=num,
            num_leaves=1,
            num_internal=0,
            max_depth=0,
            avg_candidates_per_leaf=float(num),
        )

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def count_transaction(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count every ranked pair of a canonical transaction.

        ``root_filter`` is a hash-tree concept (IDD's first-item bitmap)
        with no triangular equivalent; callers needing it must use a
        tree kernel.
        """
        if root_filter is not None:
            raise ValueError(
                "PairCounter does not support root_filter; use a hash-tree "
                "kernel for IDD-style first-item pruning"
            )
        rank = self._rank
        # Transactions are sorted and rank is order-preserving, so the
        # rank list is ascending: a < b holds for every generated pair.
        ranks = [rank[item] for item in transaction if item in rank]
        tri = self._tri
        offset = self._offset
        for x in range(len(ranks) - 1):
            base = offset[ranks[x]]
            for y in range(x + 1, len(ranks)):
                tri[base + ranks[y]] += 1

    def count_database(
        self,
        transactions: Iterable[Sequence[int]],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Run :meth:`count_transaction` for every transaction."""
        count_transaction = self.count_transaction
        for transaction in transactions:
            count_transaction(transaction, root_filter)

    def count_packed(
        self,
        packed,
        lo: int = 0,
        hi: Optional[int] = None,
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count transactions ``[lo, hi)`` of a packed columnar store.

        The rank translation iterates ``(offsets, items)`` slices of a
        :class:`~repro.core.packed.PackedDB` directly (zero-copy for
        memoryview-backed stores); counts are identical to decoding each
        transaction into a tuple first.
        """
        if root_filter is not None:
            raise ValueError(
                "PairCounter does not support root_filter; use a hash-tree "
                "kernel for IDD-style first-item pruning"
            )
        if hi is None:
            hi = len(packed)
        offsets = packed.offsets
        items = packed.items
        count_transaction = self.count_transaction
        for i in range(lo, hi):
            count_transaction(items[offsets[i]:offsets[i + 1]])

    # ------------------------------------------------------------------
    # Count-table manipulation
    # ------------------------------------------------------------------

    def add_counts(self, other_counts: Dict[Itemset, int]) -> None:
        """Element-wise add a count table into this counter's counts.

        Raises ``KeyError`` naming the diverging candidate if
        ``other_counts`` contains a pair this counter does not store.
        """
        tri = self._tri
        index = self._index
        for candidate, count in other_counts.items():
            slot = index.get(candidate)
            if slot is None:
                raise KeyError(
                    f"add_counts: candidate {candidate!r} is not stored in "
                    f"this pass-2 counter ({len(index)} pairs) — count "
                    "tables diverged"
                )
            tri[slot] += count

    def reset_counts(self) -> None:
        """Zero all counts (the rank structure is kept)."""
        self._tri = [0] * len(self._tri)
