"""Association rule generation (Section II definitions).

A rule ``X => Y`` (X, Y disjoint, non-empty) has

* support   = sigma(X ∪ Y) / |T|
* confidence = sigma(X ∪ Y) / sigma(X)

Discovery is the paper's "second step": derive all rules meeting a
minimum confidence from the frequent item-sets found by Apriori.  We
implement the ap-genrules strategy of Agrawal & Srikant: grow rule
consequents with ``apriori_gen``, exploiting that if ``Z - h => h`` fails
the confidence bar then so does every rule whose consequent contains
``h`` (confidence is anti-monotone in the consequent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping

from .apriori import AprioriResult
from .candidates import generate_candidates
from .items import Itemset

__all__ = ["AssociationRule", "generate_rules", "rules_from_result"]


@dataclass(frozen=True)
class AssociationRule:
    """One association rule ``antecedent => consequent``.

    Attributes:
        antecedent: canonical item-set X.
        consequent: canonical item-set Y (disjoint from X).
        support: sigma(X ∪ Y) / |T|.
        confidence: sigma(X ∪ Y) / sigma(X).
        count: sigma(X ∪ Y), the absolute joint count.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    count: int

    def __str__(self) -> str:
        lhs = "{" + ", ".join(map(str, self.antecedent)) + "}"
        rhs = "{" + ", ".join(map(str, self.consequent)) + "}"
        return (
            f"{lhs} => {rhs}"
            f" (support={self.support:.3f}, confidence={self.confidence:.3f})"
        )


def generate_rules(
    frequent: Mapping[Itemset, int],
    num_transactions: int,
    min_confidence: float,
) -> List[AssociationRule]:
    """Derive all rules meeting ``min_confidence`` from frequent item-sets.

    Args:
        frequent: item-set → support count; must be *downward closed*
            (every subset of a frequent set present), which Apriori
            guarantees.
        num_transactions: |T|, for fractional supports.
        min_confidence: threshold in (0, 1].

    Returns:
        Rules sorted by descending confidence, then descending support,
        then antecedent/consequent for determinism.

    Raises:
        KeyError: if ``frequent`` is not downward closed (a rule's
            antecedent is missing a count).
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    if num_transactions <= 0:
        raise ValueError("num_transactions must be positive")

    rules: List[AssociationRule] = []
    # ap-genrules re-reads the same antecedent supports over and over:
    # every item-set Z containing X looks up sigma(X) once per surviving
    # consequent.  One memo shared across the whole derivation turns the
    # repeated mapping lookups (which may be backed by something costlier
    # than a dict — a proxy, a disk-backed table) into single fetches.
    support_memo: Dict[Itemset, int] = {}
    for itemset, joint_count in frequent.items():
        if len(itemset) < 2:
            continue
        rules.extend(
            _rules_for_itemset(
                itemset,
                joint_count,
                frequent,
                num_transactions,
                min_confidence,
                support_memo,
            )
        )
    rules.sort(
        key=lambda r: (-r.confidence, -r.support, r.antecedent, r.consequent)
    )
    return rules


def _rules_for_itemset(
    itemset: Itemset,
    joint_count: int,
    frequent: Mapping[Itemset, int],
    num_transactions: int,
    min_confidence: float,
    support_memo: Dict[Itemset, int] | None = None,
) -> Iterator[AssociationRule]:
    """ap-genrules for one frequent item-set Z of size >= 2.

    ``support_memo`` lets a caller share antecedent-support fetches
    across item-sets (see :func:`generate_rules`); omitted, each
    item-set memoizes only its own lookups.
    """
    if support_memo is None:
        support_memo = {}
    support = joint_count / num_transactions

    def make_rule(consequent: Itemset) -> AssociationRule | None:
        consequent_items = frozenset(consequent)
        antecedent = tuple(i for i in itemset if i not in consequent_items)
        antecedent_count = support_memo.get(antecedent)
        if antecedent_count is None:
            antecedent_count = frequent[antecedent]
            support_memo[antecedent] = antecedent_count
        confidence = joint_count / antecedent_count
        if confidence + 1e-12 < min_confidence:
            return None
        return AssociationRule(
            antecedent=antecedent,
            consequent=consequent,
            support=support,
            confidence=min(confidence, 1.0),
            count=joint_count,
        )

    # Consequents of size 1.
    surviving: List[Itemset] = []
    for item in itemset:
        rule = make_rule((item,))
        if rule is not None:
            surviving.append((item,))
            yield rule

    # Grow consequents: a size-(m+1) consequent is viable only if all its
    # size-m subsets produced confident rules, so apriori_gen applies.
    m = 1
    while surviving and m + 1 < len(itemset):
        next_consequents = generate_candidates(surviving)
        surviving = []
        for consequent in next_consequents:
            rule = make_rule(consequent)
            if rule is not None:
                surviving.append(consequent)
                yield rule
        m += 1


def rules_from_result(
    result: AprioriResult, min_confidence: float
) -> List[AssociationRule]:
    """Convenience wrapper: derive rules straight from an Apriori result."""
    return generate_rules(
        result.frequent, result.num_transactions, min_confidence
    )
