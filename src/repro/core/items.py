"""Canonical representations for items and item-sets.

The paper (Section II) models a transaction database ``T`` over an item
universe ``I``.  Throughout this library:

* an *item* is a non-negative :class:`int` (item identifiers are dense
  integers, as produced by the Quest generator);
* an *itemset* is a :class:`tuple` of items sorted in strictly increasing
  order.  Sorted tuples are hashable (so they can be dictionary keys in
  count tables), cheap to compare, and — exactly as the paper notes for
  its hash tree — keeping items sorted means candidate generation never
  needs an explicit sort.

This module provides the canonicalization and validation helpers that the
rest of :mod:`repro.core` relies on.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

Item = int
Itemset = Tuple[int, ...]

__all__ = [
    "Item",
    "Itemset",
    "itemset",
    "is_canonical",
    "validate_itemset",
    "is_subset",
    "first_item",
    "prefix",
]


def itemset(items: Iterable[int]) -> Itemset:
    """Return the canonical (sorted, duplicate-free) form of ``items``.

    >>> itemset([3, 1, 2, 3])
    (1, 2, 3)
    """
    return tuple(sorted(set(items)))


def is_canonical(candidate: Sequence[int]) -> bool:
    """Return ``True`` if ``candidate`` is strictly increasing.

    Canonical itemsets contain no duplicates and are sorted, which is the
    invariant every data structure in this package assumes.
    """
    return all(a < b for a, b in zip(candidate, candidate[1:]))


def validate_itemset(candidate: Sequence[int]) -> Itemset:
    """Validate that ``candidate`` is canonical and return it as a tuple.

    Raises:
        ValueError: if the sequence is empty, contains negative items, or
            is not strictly increasing.
    """
    result = tuple(candidate)
    if not result:
        raise ValueError("an itemset must contain at least one item")
    if result[0] < 0:
        raise ValueError(f"items must be non-negative, got {result[0]}")
    if not is_canonical(result):
        raise ValueError(f"itemset {result!r} is not sorted and duplicate-free")
    return result


def is_subset(candidate: Sequence[int], transaction: Sequence[int]) -> bool:
    """Return ``True`` if sorted ``candidate`` is contained in sorted ``transaction``.

    Both arguments must be in canonical (strictly increasing) order.  This
    is the merge-style containment test used by the naive counting oracle
    and by leaf-node checks in the hash tree; it runs in
    ``O(len(transaction))``.
    """
    pos = 0
    limit = len(transaction)
    for item in candidate:
        while pos < limit and transaction[pos] < item:
            pos += 1
        if pos == limit or transaction[pos] != item:
            return False
        pos += 1
    return True


def first_item(candidate: Sequence[int]) -> int:
    """Return the first (smallest) item of a canonical itemset.

    IDD partitions the candidate set by first item (Section III-C); this
    accessor names that operation.
    """
    return candidate[0]


def prefix(candidate: Sequence[int], length: int) -> Itemset:
    """Return the length-``length`` prefix of a canonical itemset."""
    return tuple(candidate[:length])
