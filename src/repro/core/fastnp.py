"""Vectorized tree-family counting kernel (``kernel="fast-np"``).

The hash-tree kernels walk every transaction through the candidate tree
in the interpreter; the vertical kernel removed that loop with CPython
big-integer bitmaps.  This module removes it with :mod:`numpy` batch
operations instead, which also lets the candidate set live as one flat
int32 matrix — exactly the binary frame the native pool's shared
candidate plane broadcasts, so a worker can count *straight out of the
shared segment* without ever materializing candidate tuples:

* :class:`PackedBitmaps` — one pass over a :class:`~repro.core.packed.
  PackedDB` range builds a packed presence **bit-matrix**: row ``r`` is
  the TID bitmap of the range's ``r``-th distinct item, eight
  transactions per byte.  Like the vertical kernel's bitmaps they are
  candidate- and pass-independent, so long-lived holders reuse them
  across passes via :class:`PackedBitmapCache`.
* :class:`FastNumpyCounter` — candidates as one ``(num, k)`` int32/64
  matrix.  Counting maps every candidate item to its bitmap row with one
  ``np.searchsorted`` over the sorted distinct-item table, ANDs the
  gathered rows chunk-wise (sharing the work of equal ``k-1`` prefixes:
  contiguous runs of candidates with the same prefix — the normal shape
  of a sorted apriori_gen batch — pay the prefix AND once), and reduces
  each row with a popcount into an int64 count vector.  No
  per-transaction or per-candidate interpreter loop remains.

Counts are bit-identical to :class:`~repro.core.hashtree.HashTree` on
every input (property-tested in ``tests/core/test_fastnp.py``): a
candidate's AND row has bit ``t`` set for exactly the transactions whose
item set contains all its items — the tree's superset test.

**Numpy is optional.**  The module imports cleanly without it;
:data:`HAVE_NUMPY` tells the kernel facade to fall back to the
pure-python vertical machinery (:class:`~repro.core.vertical.
VerticalCounter` + :class:`~repro.core.vertical.TidBitmapCache`), which
shares the count-surface contract and the bit-identical guarantee.
:func:`make_cache` returns whichever cross-pass cache matches the
active implementation, so drivers never branch on the import themselves.
"""

from __future__ import annotations

import time
from typing import (
    Container,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .hashtree import TreeShape
from .items import Itemset
from .packed import _CAND_HEADER

try:  # pragma: no cover - exercised via the HAVE_NUMPY monkeypatch tests
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI's no-numpy leg
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "PackedBitmaps",
    "PackedBitmapCache",
    "FastNumpyCounter",
    "make_cache",
]

# Candidates ANDed per batch: large enough to amortize the per-chunk
# numpy dispatch, small enough that the three transient (chunk, nbytes)
# row buffers stay comfortably in cache.
_CHUNK = 2048

if HAVE_NUMPY:
    _HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
    # Byte-popcount table for numpy < 2.0 (no np.bitwise_count).
    _POPCOUNT_LUT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )


def make_cache():
    """The cross-pass bitmap cache matching the active implementation.

    :class:`PackedBitmapCache` with numpy, the vertical kernel's
    :class:`~repro.core.vertical.TidBitmapCache` without — paired with
    what :func:`~repro.core.kernels.make_counter` returns for
    ``kernel="fast-np"`` in the same interpreter.
    """
    if HAVE_NUMPY:
        return PackedBitmapCache()
    from .vertical import TidBitmapCache

    return TidBitmapCache()


def _popcount_rows(acc) -> "np.ndarray":
    """Per-row popcount of a uint8 matrix, as int64."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    return _POPCOUNT_LUT[acc].sum(axis=1, dtype=np.int64)


class PackedBitmaps:
    """Per-item TID bitmaps over one transaction range, as a bit-matrix.

    ``rows[r]`` is the packed (little bit-order: bit ``t`` of byte ``b``
    is relative transaction ``8 b + t``) presence bitmap of
    ``item_ids[r]``; ``item_ids`` is sorted, so an item maps to its row
    with one ``np.searchsorted``.  Items absent from the range have no
    row (their bitmap is all-zero by construction).
    """

    __slots__ = ("item_ids", "rows", "num_transactions", "build_s")

    def __init__(self, item_ids, rows, num_transactions: int,
                 build_s: float = 0.0):
        self.item_ids = item_ids
        self.rows = rows
        self.num_transactions = num_transactions
        self.build_s = build_s

    @classmethod
    def _build(cls, seg_items, tx_ids, n: int, started: float
               ) -> "PackedBitmaps":
        """Assemble the bit-matrix from flat (item, transaction) pairs.

        Builds a transient ``(distinct_items, n)`` bool matrix and packs
        it — O(items x transactions) bytes of scratch, freed on return.
        """
        if seg_items.size and n:
            item_ids = np.unique(seg_items)
            col = np.searchsorted(item_ids, seg_items)
            present = np.zeros((item_ids.size, n), dtype=bool)
            present[col, tx_ids] = True
            rows = np.packbits(present, axis=1, bitorder="little")
        else:
            item_ids = np.zeros(0, dtype=np.int64)
            rows = np.zeros((0, (n + 7) >> 3), dtype=np.uint8)
        return cls(item_ids, rows, n, time.perf_counter() - started)

    @classmethod
    def from_packed(
        cls, packed, lo: int = 0, hi: Optional[int] = None
    ) -> "PackedBitmaps":
        """Build bitmaps from transactions ``[lo, hi)`` of a packed store.

        One vectorized pass over the int32 columns; identical for
        array-backed and shared-memory ``memoryview``-backed stores (the
        views are read, never retained).
        """
        started = time.perf_counter()
        if hi is None:
            hi = len(packed)
        n = hi - lo
        if n <= 0:
            return cls._build(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.intp),
                max(n, 0), started,
            )
        offsets = np.asarray(packed.offsets)[lo:hi + 1].astype(np.int64)
        seg_items = np.asarray(packed.items)[offsets[0]:offsets[-1]]
        tx_ids = np.repeat(np.arange(n, dtype=np.intp), np.diff(offsets))
        return cls._build(seg_items, tx_ids, n, started)

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Sequence[int]]
    ) -> "PackedBitmaps":
        """Build bitmaps from an iterable of item sequences."""
        started = time.perf_counter()
        flat: List[int] = []
        lengths: List[int] = []
        for transaction in transactions:
            flat.extend(transaction)
            lengths.append(len(transaction))
        n = len(lengths)
        seg_items = np.array(flat, dtype=np.int64)
        tx_ids = np.repeat(
            np.arange(n, dtype=np.intp), np.array(lengths, dtype=np.int64)
        )
        return cls._build(seg_items, tx_ids, n, started)

    def bits_for(self, item: int) -> "np.ndarray":
        """Packed bitmap row of ``item`` (all-zero when absent)."""
        row = np.searchsorted(self.item_ids, item)
        if row < self.item_ids.size and self.item_ids[row] == item:
            return self.rows[row]
        return np.zeros(self.rows.shape[1], dtype=np.uint8)


class PackedBitmapCache:
    """Per-process bit-matrix cache, keyed on the data a worker holds.

    The numpy twin of :class:`~repro.core.vertical.TidBitmapCache`:
    native-pool workers persist across passes while counters are rebuilt
    (or reset) every pass, so the cache lives in the worker loop and
    hands each pass the matrices built on the first pass over the same
    range.  Entries pin their source object, so the ``id()`` keys cannot
    be recycled while an entry is alive.
    """

    def __init__(self) -> None:
        self._packed: Dict[Tuple[int, int, int],
                           Tuple[object, PackedBitmaps]] = {}
        self._blocks: Dict[int, Tuple[object, PackedBitmaps]] = {}

    def for_packed(
        self, packed, lo: int = 0, hi: Optional[int] = None
    ) -> PackedBitmaps:
        """Bitmaps for packed range ``[lo, hi)``, built at most once."""
        if hi is None:
            hi = len(packed)
        key = (id(packed), lo, hi)
        entry = self._packed.get(key)
        if entry is None or entry[0] is not packed:
            entry = (packed, PackedBitmaps.from_packed(packed, lo, hi))
            self._packed[key] = entry
        return entry[1]

    def for_block(self, block: Sequence[Sequence[int]]) -> PackedBitmaps:
        """Bitmaps for a transaction block, built at most once."""
        key = id(block)
        entry = self._blocks.get(key)
        if entry is None or entry[0] is not block:
            entry = (block, PackedBitmaps.from_transactions(block))
            self._blocks[key] = entry
        return entry[1]

    def clear(self) -> None:
        self._packed.clear()
        self._blocks.clear()


class FastNumpyCounter:
    """Support counter over batched bit-matrix intersections.

    The public surface mirrors :class:`~repro.core.vertical.
    VerticalCounter` (and through it the hash trees), so the kernel
    facade hands any of them to the same driver code; counts accumulate
    across ``count_*`` calls (the CD reduction invariant).

    Two extra constructors serve the shared candidate plane:
    :meth:`from_matrix` wraps an existing ``(num, k)`` candidate matrix
    and :meth:`from_flat` decodes one straight from a binary candidate
    frame (:func:`~repro.core.packed.write_candidates_into` layout) —
    both zero-copy, deferring tuple materialization until a dict-shaped
    method actually needs it, so a pool worker counting out of the
    shared segment never builds 40k tuples at all
    (:meth:`counts_vector` returns the plane-order vector directly, and
    :meth:`first_item_mask` / :meth:`counts_for` give IDD shards their
    ownership view of the shared matrix).

    Attributes:
        build_s: seconds building (or fetching from the cache) the
            bit-matrices across all ``count_packed`` /
            ``count_database`` calls.
        intersect_s: seconds gathering, ANDing and popcounting.
    """

    def __init__(self, k: int, candidates: Sequence[Itemset] = ()):
        if not HAVE_NUMPY:
            raise RuntimeError(
                "FastNumpyCounter requires numpy; use "
                "make_counter(kernel='fast-np') which falls back to the "
                "pure-python vertical machinery when numpy is absent"
            )
        if k < 1:
            raise ValueError(f"candidate size must be >= 1, got {k}")
        self.k = k
        self._tuples: Optional[List[Itemset]] = []
        self._index: Optional[Dict[Itemset, int]] = {}
        self._matrix = None
        self._counts = np.zeros(0, dtype=np.int64)
        self._cache: Optional[PackedBitmapCache] = None
        self.build_s = 0.0
        self.intersect_s = 0.0
        self.insert_all(candidates)

    # ------------------------------------------------------------------
    # Plane constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_matrix(cls, k: int, matrix) -> "FastNumpyCounter":
        """Wrap an existing ``(num, k)`` candidate matrix — zero-copy.

        Rows must be canonical (sorted, distinct-item) candidates; their
        order defines slot order.  The matrix (typically a view into a
        shared candidate segment) must outlive the counter.
        """
        if matrix.ndim != 2 or matrix.shape[1] != k:
            raise ValueError(
                f"candidate matrix of shape {matrix.shape} does not hold "
                f"size-{k} candidates"
            )
        counter = cls(k)
        counter._tuples = None
        counter._index = None
        counter._matrix = matrix
        counter._counts = np.zeros(matrix.shape[0], dtype=np.int64)
        return counter

    @classmethod
    def from_flat(cls, buf) -> "FastNumpyCounter":
        """Decode a binary candidate frame into a counter — zero-copy.

        ``buf`` is a buffer laid out by :func:`~repro.core.packed.
        write_candidates_into` (e.g. a shared candidate segment's
        ``buf``); the candidate matrix is a view into it, so the buffer
        must outlive the counter.
        """
        num, k = _CAND_HEADER.unpack_from(buf, 0)
        matrix = np.frombuffer(
            buf, dtype=np.dtype("<i4"), count=num * k,
            offset=_CAND_HEADER.size,
        ).reshape(num, k)
        return cls.from_matrix(k, matrix)

    # ------------------------------------------------------------------
    # Candidate storage
    # ------------------------------------------------------------------

    def _ensure_index(self) -> Dict[Itemset, int]:
        """Materialize tuples/index from a matrix-only counter (lazy)."""
        if self._index is None:
            self._tuples = [
                tuple(int(item) for item in row) for row in self._matrix
            ]
            self._index = {c: i for i, c in enumerate(self._tuples)}
        return self._index

    def _ensure_matrix(self):
        """The ``(num, k)`` candidate matrix, built from tuples on demand."""
        if self._matrix is None:
            self._matrix = np.array(
                self._tuples, dtype=np.int64
            ).reshape(len(self._tuples), self.k)
        return self._matrix

    def _ensure_counts(self):
        """The int64 count vector, grown lazily to the candidate count.

        ``insert`` never reallocates it (appending per candidate would
        make bulk insertion quadratic); readers and counters size it
        here, preserving already-accumulated counts.
        """
        num = len(self)
        if self._counts.shape[0] != num:
            grown = np.zeros(num, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        return self._counts

    def insert(self, candidate: Itemset) -> None:
        """Store a canonical size-``k`` candidate (duplicates ignored)."""
        if len(candidate) != self.k:
            raise ValueError(
                f"candidate {candidate!r} has size {len(candidate)}, "
                f"expected {self.k}"
            )
        index = self._ensure_index()
        if candidate not in index:
            index[candidate] = len(self._tuples)
            self._tuples.append(candidate)
            self._matrix = None  # rebuilt from tuples on the next count

    def insert_all(self, candidates: Iterable[Itemset]) -> None:
        for candidate in candidates:
            self.insert(candidate)

    def use_cache(self, cache: Optional[PackedBitmapCache]) -> None:
        """Fetch bit-matrices through ``cache`` instead of per call."""
        self._cache = cache

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if self._tuples is not None:
            return len(self._tuples)
        return int(self._matrix.shape[0])

    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._ensure_index()

    def candidates(self) -> Iterator[Itemset]:
        """Iterate over stored candidates (slot order)."""
        self._ensure_index()
        return iter(self._tuples)

    def get_count(self, candidate: Itemset) -> int:
        return int(self._ensure_counts()[self._ensure_index()[candidate]])

    def counts(self) -> Dict[Itemset, int]:
        self._ensure_index()
        counts = self._ensure_counts().tolist()
        return {c: counts[i] for i, c in enumerate(self._tuples)}

    def frequent(self, min_count: int) -> Dict[Itemset, int]:
        self._ensure_index()
        counts = self._ensure_counts()
        return {
            self._tuples[i]: int(counts[i])
            for i in np.flatnonzero(counts >= min_count)
        }

    def counts_vector(self) -> List[int]:
        """All counts in slot (candidate-list) order — no tuples built."""
        return self._ensure_counts().tolist()

    def counts_for(self, mask) -> List[int]:
        """Counts of the candidates selected by a bool ``mask``, in order.

        With a :meth:`first_item_mask` this is an IDD shard's count
        vector: slot order restricted to owned candidates equals the
        coordinator's sorted-shard order.
        """
        return self._ensure_counts()[mask].tolist()

    def first_item_mask(self, container: Container[int]):
        """Bool mask of candidates whose first item is in ``container``.

        Each *distinct* first item is tested exactly once (so a tallying
        filter sees one check per owned-or-not first item, not one per
        candidate), then broadcast back over the candidate axis.
        """
        matrix = self._ensure_matrix()
        if matrix.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        firsts, inverse = np.unique(matrix[:, 0], return_inverse=True)
        allowed = np.fromiter(
            (int(item) in container for item in firsts),
            dtype=bool, count=firsts.size,
        )
        return allowed[inverse]

    def shape(self) -> TreeShape:
        """Degenerate shape: the candidate matrix is one flat 'leaf'."""
        num = len(self)
        return TreeShape(
            num_candidates=num,
            num_leaves=1,
            num_internal=0,
            max_depth=0,
            avg_candidates_per_leaf=float(num),
        )

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def count_bitmaps(
        self,
        bitmaps: PackedBitmaps,
        root_filter=None,
    ) -> None:
        """Accumulate each candidate's AND-popcount over ``bitmaps``.

        ``root_filter`` keeps the hash-tree contract — only candidates
        whose first item passes are counted; it may be any container or
        a precomputed :meth:`first_item_mask` bool array (the IDD shard
        path, which tests ownership once per pass, not once per ring
        step).
        """
        started = time.perf_counter()
        try:
            self._count_batches(bitmaps, root_filter)
        finally:
            self.intersect_s += time.perf_counter() - started

    def _count_batches(self, bitmaps: PackedBitmaps, root_filter) -> None:
        matrix = self._ensure_matrix()
        num = matrix.shape[0]
        if num == 0 or bitmaps.num_transactions == 0:
            return
        selected = None
        if root_filter is not None:
            if isinstance(root_filter, np.ndarray):
                selected = root_filter
            else:
                selected = self.first_item_mask(root_filter)
            if not selected.any():
                return
        item_ids = bitmaps.item_ids
        if item_ids.size == 0:
            return  # no item present in the range: every count is +0
        # One sorted-membership probe maps every candidate item to its
        # bitmap row; rows are clipped for the equality check and any
        # candidate with an absent item contributes zero (skipped).
        pos = np.searchsorted(item_ids, matrix)
        np.minimum(pos, item_ids.size - 1, out=pos)
        valid = (item_ids[pos] == matrix).all(axis=1)
        if selected is not None:
            valid &= selected
        hits = np.flatnonzero(valid)
        if hits.size == 0:
            return
        rows = bitmaps.rows
        k = self.k
        counts = self._ensure_counts()
        for start in range(0, hits.size, _CHUNK):
            chunk = hits[start:start + _CHUNK]
            gathered = pos[chunk]
            if k == 1:
                acc = rows[gathered[:, 0]]
            elif k == 2:
                acc = rows[gathered[:, 0]] & rows[gathered[:, 1]]
            else:
                # Prefix-run sharing: contiguous candidates with equal
                # (k-1)-prefixes (the shape of a sorted apriori_gen
                # batch) AND their prefix once, then each pays a single
                # AND with its last item's row.
                prefix = gathered[:, :k - 1]
                new_run = np.empty(chunk.size, dtype=bool)
                new_run[0] = True
                np.any(prefix[1:] != prefix[:-1], axis=1, out=new_run[1:])
                run_starts = np.flatnonzero(new_run)
                pre = rows[prefix[run_starts, 0]]
                for j in range(1, k - 1):
                    pre = pre & rows[prefix[run_starts, j]]
                group = np.cumsum(new_run) - 1
                acc = pre[group] & rows[gathered[:, k - 1]]
            counts[chunk] += _popcount_rows(acc)

    def count_packed(
        self,
        packed,
        lo: int = 0,
        hi: Optional[int] = None,
        root_filter=None,
    ) -> None:
        """Count transactions ``[lo, hi)`` of a packed columnar store."""
        if hi is None:
            hi = len(packed)
        started = time.perf_counter()
        if self._cache is not None:
            bitmaps = self._cache.for_packed(packed, lo, hi)
        else:
            bitmaps = PackedBitmaps.from_packed(packed, lo, hi)
        self.build_s += time.perf_counter() - started
        self.count_bitmaps(bitmaps, root_filter)

    def count_database(
        self,
        transactions: Iterable[Sequence[int]],
        root_filter=None,
    ) -> None:
        """Build (or fetch) bit-matrices for ``transactions`` and count."""
        started = time.perf_counter()
        if self._cache is not None and isinstance(transactions, (list, tuple)):
            bitmaps = self._cache.for_block(transactions)
        else:
            bitmaps = PackedBitmaps.from_transactions(transactions)
        self.build_s += time.perf_counter() - started
        self.count_bitmaps(bitmaps, root_filter)

    def count_transaction(
        self,
        transaction: Sequence[int],
        root_filter: Optional[Container[int]] = None,
    ) -> None:
        """Count one transaction (API-compat fallback; set-superset).

        Single transactions have no matrix to batch, so this is the
        direct subset test — still bit-identical to the tree kernels.
        """
        present = set(transaction)
        counts = self._ensure_counts()
        for candidate, slot in self._ensure_index().items():
            if root_filter is not None and candidate[0] not in root_filter:
                continue
            if present.issuperset(candidate):
                counts[slot] += 1

    # ------------------------------------------------------------------
    # Count-table manipulation
    # ------------------------------------------------------------------

    def add_counts(self, other_counts: Dict[Itemset, int]) -> None:
        """Element-wise add a count table into this counter's counts.

        Raises ``KeyError`` naming the diverging candidate if
        ``other_counts`` contains a candidate this counter does not
        store.
        """
        counts = self._ensure_counts()
        index = self._ensure_index()
        for candidate, count in other_counts.items():
            slot = index.get(candidate)
            if slot is None:
                raise KeyError(
                    f"add_counts: candidate {candidate!r} is not stored in "
                    f"this fast-np counter ({len(index)} candidates) — "
                    "count tables diverged"
                )
            counts[slot] += count

    def reset_counts(self) -> None:
        """Zero all counts (candidates, matrix and cache wiring kept)."""
        self._ensure_counts()[:] = 0
