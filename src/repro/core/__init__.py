"""Core association-rule mining substrate: serial Apriori and its parts.

Public surface of the paper's Section II machinery plus the candidate
partitioners the parallel formulations build on.
"""

from .apriori import Apriori, AprioriResult, PassTrace, min_support_count
from .bitmap import ItemBitmap
from .candidates import (
    first_item_histogram,
    generate_candidates,
    generate_candidates_2,
)
from .counting import count_naive, count_with_hashtree, support_count
from .fastnp import FastNumpyCounter, PackedBitmapCache, PackedBitmaps
from .hashtree import HashTree, HashTreeStats, TreeShape
from .hashtree_flat import FlatHashTree
from .kernels import KERNELS, make_counter, validate_kernel
from .pass2 import PairCounter
from .items import Item, Itemset, is_subset, itemset, validate_itemset
from .partition import (
    CandidatePartition,
    bin_pack,
    partition_by_first_item,
    partition_round_robin,
)
from .rules import AssociationRule, generate_rules, rules_from_result
from .streaming import StreamingApriori
from .summaries import closed_itemsets, maximal_itemsets, support_histogram
from .transaction import DBStats, TransactionDB
from .vertical import TidBitmapCache, TidBitmaps, VerticalCounter

__all__ = [
    "Apriori",
    "AprioriResult",
    "AssociationRule",
    "CandidatePartition",
    "DBStats",
    "FastNumpyCounter",
    "FlatHashTree",
    "HashTree",
    "HashTreeStats",
    "Item",
    "ItemBitmap",
    "Itemset",
    "KERNELS",
    "PackedBitmapCache",
    "PackedBitmaps",
    "PairCounter",
    "PassTrace",
    "StreamingApriori",
    "TidBitmapCache",
    "TidBitmaps",
    "TransactionDB",
    "TreeShape",
    "VerticalCounter",
    "bin_pack",
    "closed_itemsets",
    "count_naive",
    "count_with_hashtree",
    "first_item_histogram",
    "generate_candidates",
    "generate_candidates_2",
    "generate_rules",
    "is_subset",
    "itemset",
    "make_counter",
    "maximal_itemsets",
    "min_support_count",
    "partition_by_first_item",
    "partition_round_robin",
    "rules_from_result",
    "support_count",
    "support_histogram",
    "validate_itemset",
    "validate_kernel",
]
