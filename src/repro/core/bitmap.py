"""First-item bitmap for IDD's root-level filtering (Section III-C, Fig. 8).

Each IDD processor "keeps the first items of the candidates it has in a
bit-map"; at the hash tree root, transaction items absent from the bitmap
are skipped, which removes the redundant traversal work DD performs.

The bitmap is backed by a single Python integer used as a bit vector, so
membership is one shift-and-mask — an honest stand-in for the paper's
bit-map — while still satisfying the ``in`` protocol the hash tree's
``root_filter`` argument expects.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["ItemBitmap"]


class ItemBitmap:
    """Membership bitmap over non-negative integer items."""

    __slots__ = ("_bits",)

    def __init__(self, items: Iterable[int] = ()):
        bits = 0
        for item in items:
            if item < 0:
                raise ValueError(f"items must be non-negative, got {item}")
            bits |= 1 << item
        self._bits = bits

    def __contains__(self, item: int) -> bool:
        return (self._bits >> item) & 1 == 1

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        item = 0
        while bits:
            if bits & 1:
                yield item
            bits >>= 1
            item += 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemBitmap):
            return NotImplemented
        return self._bits == other._bits

    def __or__(self, other: "ItemBitmap") -> "ItemBitmap":
        merged = ItemBitmap()
        merged._bits = self._bits | other._bits
        return merged

    def __repr__(self) -> str:
        return f"ItemBitmap({sorted(self)!r})"

    @property
    def bits(self) -> int:
        """The raw bit-vector integer (bit ``i`` set iff item ``i`` is in)."""
        return self._bits

    @classmethod
    def from_bits(cls, bits: int) -> "ItemBitmap":
        """Rebuild a bitmap from :attr:`bits`.

        The integer form is how the native IDD/HD pool ships ownership
        bitmaps to workers: one arbitrary-precision int per pass instead
        of a pickled item list.
        """
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        bitmap = cls()
        bitmap._bits = bits
        return bitmap

    def add(self, item: int) -> None:
        """Set the bit for ``item``."""
        if item < 0:
            raise ValueError(f"items must be non-negative, got {item}")
        self._bits |= 1 << item

    def size_in_bytes(self, num_items: int) -> int:
        """Bytes a dense bitmap over ``num_items`` items occupies.

        Used by the cost model when IDD broadcasts ownership bitmaps.
        """
        return (num_items + 7) // 8
