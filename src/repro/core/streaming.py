"""Disk-resident mining: Apriori over data that never sits in memory.

Section II: the Apriori algorithm "does not require the transactions to
stay in main memory, but requires the hash trees to stay in main
memory".  :class:`StreamingApriori` honours that property literally — it
mines from a *transaction source* (a callable returning a fresh
iterator per pass, e.g. a file reader), scanning the source once per
pass and holding only the candidate hash tree and the frequent-set
table in memory.

Combined with :func:`repro.data.io.stream_dat`, databases far larger
than RAM mine with a constant memory footprint, at the price the paper
describes: one full scan of the source per pass.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, List, Optional, Sequence

from .apriori import AprioriResult, PassTrace, min_support_count
from .candidates import generate_candidates
from .items import Itemset
from .kernels import make_counter, validate_kernel

__all__ = ["StreamingApriori", "TransactionSource"]

TransactionSource = Callable[[], Iterable[Sequence[int]]]


class StreamingApriori:
    """Apriori over a re-scannable transaction source.

    Args:
        min_support: fractional minimum support in (0, 1].
        branching / leaf_capacity: hash tree geometry.
        max_k: optional pass cap.
        kernel: counting kernel — ``"reference"`` (default; keeps the
            per-pass ``tree_stats`` instrumentation) or ``"fast"``
            (uninstrumented flat kernel, ``tree_stats`` left ``None``).

    The source callable is invoked once per pass and must yield the same
    canonical transactions each time (a file re-opened per pass, a
    database cursor, a generator factory).
    """

    def __init__(
        self,
        min_support: float,
        branching: int = 64,
        leaf_capacity: int = 16,
        max_k: Optional[int] = None,
        kernel: str = "reference",
    ):
        if max_k is not None and max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        self.min_support = min_support
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.max_k = max_k
        self.kernel = validate_kernel(kernel)

    def mine(self, source: TransactionSource) -> AprioriResult:
        """Mine all frequent item-sets of the streamed database.

        Raises:
            ValueError: if the source yields different transaction
                counts on different scans (a non-reproducible source
                would silently mis-count supports).
        """
        # Pass 1: count items and learn |T| in a single scan.
        item_counts: Counter = Counter()
        num_transactions = 0
        for transaction in source():
            num_transactions += 1
            item_counts.update(transaction)
        min_count = min_support_count(
            self.min_support, max(1, num_transactions)
        )

        result = AprioriResult(
            frequent={},
            min_support=self.min_support,
            min_count=min_count,
            num_transactions=num_transactions,
        )
        frequent_1 = {
            (item,): count
            for item, count in item_counts.items()
            if count >= min_count
        }
        result.frequent.update(frequent_1)
        result.passes.append(
            PassTrace(
                k=1,
                num_candidates=len(item_counts),
                num_frequent=len(frequent_1),
            )
        )

        frequent_prev: List[Itemset] = sorted(frequent_1)
        k = 2
        while frequent_prev and (self.max_k is None or k <= self.max_k):
            candidates = generate_candidates(frequent_prev)
            if not candidates:
                break
            counter = make_counter(
                k,
                candidates,
                kernel=self.kernel,
                branching=self.branching,
                leaf_capacity=self.leaf_capacity,
            )
            scanned = 0
            for transaction in source():
                scanned += 1
                counter.count_transaction(transaction)
            if scanned != num_transactions:
                raise ValueError(
                    f"transaction source is not stable across scans: "
                    f"pass 1 saw {num_transactions}, pass {k} saw {scanned}"
                )
            frequent_k = counter.frequent(min_count)
            result.frequent.update(frequent_k)
            result.passes.append(
                PassTrace(
                    k=k,
                    num_candidates=len(candidates),
                    num_frequent=len(frequent_k),
                    tree_shape=counter.shape(),
                    tree_stats=(
                        counter.stats if self.kernel == "reference" else None
                    ),
                )
            )
            frequent_prev = sorted(frequent_k)
            k += 1
        return result
