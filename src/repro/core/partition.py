"""Candidate-set partitioners (Sections III-B and III-C).

Three strategies are provided:

* :func:`partition_round_robin` — DD's scheme: candidate ``i`` goes to
  processor ``i mod P``.  Balanced in count, but a transaction can match
  candidates on any processor, so no root-level pruning is possible.
* :func:`partition_by_first_item` — IDD's scheme: a **bin-packing**
  (greedy longest-processing-time) assignment of *first items* to
  processors so that the number of candidates per processor is roughly
  equal.  Every candidate starting with an item lives wholly on that
  item's owner, enabling the bitmap filter at the hash tree root.
* the same with **second-item refinement**: when a single first item
  carries more candidates than a threshold, its candidates are split
  further by second item (the paper's fix for first items that are too
  heavy to balance, Section III-C).

All strategies return a :class:`CandidatePartition` carrying, per
processor: the candidate list, the first-item root filter (``None`` when
filtering is unsound, i.e. for round robin), and the load statistics the
experiments report.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .bitmap import ItemBitmap
from .items import Itemset

__all__ = [
    "CandidatePartition",
    "partition_round_robin",
    "partition_by_first_item",
    "partition_contiguous_first_items",
    "bin_pack",
]


@dataclass
class CandidatePartition:
    """Result of splitting a candidate set among P processors.

    Attributes:
        assignments: per-processor candidate lists (sorted).
        filters: per-processor first-item bitmaps, or ``None`` when the
            partitioning scheme does not localize candidates by first
            item (round robin) so no root filter may be applied.
        num_processors: P.
    """

    assignments: List[List[Itemset]]
    filters: Optional[List[ItemBitmap]]
    num_processors: int

    @property
    def loads(self) -> List[int]:
        """Number of candidates on each processor."""
        return [len(a) for a in self.assignments]

    def load_imbalance(self) -> float:
        """Relative imbalance ``max/mean - 1`` of candidate counts.

        This is the "% load imbalance in terms of the number of candidate
        sets" quoted in Section III-C (e.g. 1.3% on 4 processors).
        Returns 0 for an empty partition.
        """
        loads = self.loads
        total = sum(loads)
        if total == 0:
            return 0.0
        mean = total / len(loads)
        return max(loads) / mean - 1.0

    def total_candidates(self) -> int:
        return sum(self.loads)


def partition_round_robin(
    candidates: Sequence[Itemset], num_processors: int
) -> CandidatePartition:
    """DD's round-robin candidate distribution (Section III-B)."""
    _check_processors(num_processors)
    assignments: List[List[Itemset]] = [[] for _ in range(num_processors)]
    for index, candidate in enumerate(candidates):
        assignments[index % num_processors].append(candidate)
    return CandidatePartition(
        assignments=assignments, filters=None, num_processors=num_processors
    )


def bin_pack(weights: Dict[Tuple[int, ...], int], num_bins: int) -> List[List[Tuple[int, ...]]]:
    """Greedy LPT bin packing of weighted keys into ``num_bins`` bins.

    Keys are sorted by decreasing weight and each is placed into the
    currently lightest bin (ties broken by bin index for determinism).
    This is the classic 4/3-approximation referenced via [10] in the
    paper; optimal packing is NP-hard and unnecessary here.

    Returns the list of keys per bin.
    """
    if num_bins <= 0:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    bins: List[List[Tuple[int, ...]]] = [[] for _ in range(num_bins)]
    heap: List[Tuple[int, int]] = [(0, b) for b in range(num_bins)]
    heapq.heapify(heap)
    # Sort by (-weight, key) so equal-weight keys assign deterministically.
    for key in sorted(weights, key=lambda k: (-weights[k], k)):
        load, bin_index = heapq.heappop(heap)
        bins[bin_index].append(key)
        heapq.heappush(heap, (load + weights[key], bin_index))
    return bins


def partition_by_first_item(
    candidates: Sequence[Itemset],
    num_processors: int,
    refine_threshold: Optional[int] = None,
) -> CandidatePartition:
    """IDD's intelligent partitioning (Section III-C).

    Candidates are grouped by first item; the groups are bin-packed so
    every processor receives a roughly equal number of candidates, and
    each processor's root filter is the set of first items it owns.

    Args:
        candidates: canonical candidates of one size.
        num_processors: P.
        refine_threshold: if given, any first item carrying more than
            this many candidates is split into per-second-item units
            before packing (the paper's refinement for heavy items).
            ``None`` packs on first items only.

    Returns:
        A :class:`CandidatePartition` with root filters populated.
    """
    _check_processors(num_processors)

    # Group candidates into packing units keyed by item prefix.
    by_first: Dict[int, List[Itemset]] = defaultdict(list)
    for candidate in candidates:
        by_first[candidate[0]].append(candidate)

    units: Dict[Tuple[int, ...], List[Itemset]] = {}
    for item, group in by_first.items():
        heavy = refine_threshold is not None and len(group) > refine_threshold
        can_refine = heavy and len(group[0]) >= 2
        if can_refine:
            by_second: Dict[int, List[Itemset]] = defaultdict(list)
            for candidate in group:
                by_second[candidate[1]].append(candidate)
            for second, subgroup in by_second.items():
                units[(item, second)] = subgroup
        else:
            units[(item,)] = group

    weights = {key: len(group) for key, group in units.items()}
    bins = bin_pack(weights, num_processors)

    assignments: List[List[Itemset]] = []
    filters: List[ItemBitmap] = []
    for bin_keys in bins:
        owned: List[Itemset] = []
        for key in bin_keys:
            owned.extend(units[key])
        owned.sort()
        assignments.append(owned)
        filters.append(ItemBitmap(key[0] for key in bin_keys))
    return CandidatePartition(
        assignments=assignments,
        filters=filters,
        num_processors=num_processors,
    )


def partition_contiguous_first_items(
    candidates: Sequence[Itemset], num_processors: int
) -> CandidatePartition:
    """The naive partitioning Section III-C warns against.

    First items are split into ``num_processors`` contiguous, equal-width
    ranges of the item space, ignoring how many candidates start with
    each item ("assign all the candidates starting with items 1 to 50 to
    processor P0 ... there would be more work for processor P0").  Kept
    as the ablation baseline for the bin-packing partitioner.
    """
    _check_processors(num_processors)
    first_items = sorted({c[0] for c in candidates})
    assignments: List[List[Itemset]] = [[] for _ in range(num_processors)]
    filters: List[ItemBitmap] = [ItemBitmap() for _ in range(num_processors)]
    if first_items:
        low = first_items[0]
        span = first_items[-1] - low + 1
        width = max(1, -(-span // num_processors))  # ceil division
        for candidate in candidates:
            owner = min(num_processors - 1, (candidate[0] - low) // width)
            assignments[owner].append(candidate)
            filters[owner].add(candidate[0])
    for assignment in assignments:
        assignment.sort()
    return CandidatePartition(
        assignments=assignments,
        filters=filters,
        num_processors=num_processors,
    )


def _check_processors(num_processors: int) -> None:
    if num_processors <= 0:
        raise ValueError(
            f"num_processors must be positive, got {num_processors}"
        )
