"""Support counting front-ends.

Two interchangeable counters over a transaction database:

* :func:`count_naive` — the "naive string-matching" baseline mentioned in
  Section II: test every candidate against every transaction.  Quadratic,
  but obviously correct; it serves as the oracle the hash tree is tested
  against.
* :func:`count_with_hashtree` — build a hash tree over the candidates and
  run the subset operation per transaction; returns both the counts and
  the tree (whose instrumentation the callers may inspect).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .hashtree import HashTree
from .items import Itemset, is_subset

__all__ = ["count_naive", "count_with_hashtree", "support_count"]


def count_naive(
    candidates: Iterable[Itemset],
    transactions: Iterable[Sequence[int]],
) -> Dict[Itemset, int]:
    """Count candidate occurrences by exhaustive containment tests."""
    counts: Dict[Itemset, int] = {c: 0 for c in candidates}
    candidate_list: List[Itemset] = list(counts)
    for transaction in transactions:
        for candidate in candidate_list:
            if is_subset(candidate, transaction):
                counts[candidate] += 1
    return counts


def count_with_hashtree(
    candidates: Sequence[Itemset],
    transactions: Iterable[Sequence[int]],
    branching: int = 64,
    leaf_capacity: int = 16,
) -> Tuple[Dict[Itemset, int], HashTree]:
    """Count candidate occurrences through a candidate hash tree.

    Args:
        candidates: canonical candidates, all of one size k >= 1.
        transactions: canonical transactions.
        branching: hash tree fan-out.
        leaf_capacity: the paper's S (max candidates per splittable leaf).

    Returns:
        ``(counts, tree)`` — the count table and the instrumented tree.

    Raises:
        ValueError: if ``candidates`` is empty (a tree needs a size k).
    """
    if not candidates:
        raise ValueError("count_with_hashtree requires at least one candidate")
    k = len(candidates[0])
    tree = HashTree(k, branching=branching, leaf_capacity=leaf_capacity)
    tree.insert_all(candidates)
    tree.count_database(transactions)
    return dict(tree.counts()), tree


def support_count(
    candidate: Itemset, transactions: Iterable[Sequence[int]]
) -> int:
    """Support count sigma(C) of one item-set (Section II definition)."""
    return sum(1 for t in transactions if is_subset(candidate, t))
