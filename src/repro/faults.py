"""Deterministic fault injection for the native pool and simulated cluster.

The parallel formulations of the paper (and PR 1's native worker pool)
assume processors never fail; a production miner cannot.  This module is
the single source of truth for *which* failures happen *when*, so that
every failure mode is reproducible in tests rather than flaky:

* :class:`FaultEvent` — one injected failure (kill a worker at pass k,
  delay its reply, corrupt its count vector, raise inside it, or refuse
  respawn attempts);
* :class:`FaultSpec` — an ordered, immutable collection of events with a
  compact string syntax (``--fault-spec`` on the CLI) and a seeded
  generator of random single-worker failure sequences for property
  tests;
* :class:`FaultRecord` — what a consumer actually observed and did about
  it (the recovery log surfaced by
  :class:`~repro.parallel.native.NativeCountDistribution.fault_log`).

Two layers consume a spec: the real multiprocessing pool in
:mod:`repro.parallel.native` (workers execute their own events; the
parent consults ``refuse-spawn`` budgets while recovering) and the
simulated :class:`~repro.cluster.cluster.VirtualCluster` (per-processor
failure hooks charge detection + recovery time and mark the timeline).

Spec string syntax — comma-separated events::

    kill@W:kK[:before|mid]   worker W exits at pass K (on receipt of the
                             pass request, or after counting but before
                             replying)
    delay@W:kK:SECONDS       worker W stalls its pass-K reply
    corrupt@W:kK             worker W replies with a truncated vector
    error@W:kK               worker W raises inside the counting loop
                             (surfaces as a structured error frame)
    refuse-spawn[:N]         the next N respawn attempts fail (default 1)
    coord-kill:kK            the coordinator SIGKILLs itself right after
                             pass K's checkpoint record is durable (the
                             whole-process failure the checkpoint layer
                             recovers from)

Example: ``"kill@0:k2,delay@1:k3:0.5,refuse-spawn:2"``.

Events are deterministic: a given spec always produces the same failure
sequence, and :meth:`FaultSpec.single_kills` derives a spec from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Tuple

__all__ = ["FaultEvent", "FaultSpec", "FaultRecord", "KINDS", "KILL_WHEN"]

KINDS = ("kill", "delay", "corrupt", "error", "refuse-spawn", "coord-kill")
#: Kinds executed inside a worker process (as opposed to pool-level).
WORKER_KINDS = ("kill", "delay", "corrupt", "error")
KILL_WHEN = ("before", "mid")


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure.

    Attributes:
        kind: one of :data:`KINDS`.
        worker: target worker/processor index (worker kinds only).
        k: pass number the event fires at, ``>= 2`` for worker kinds
           (the pool starts at pass 2 — pass 1 is a serial scan) and
           ``>= 1`` for ``coord-kill`` (pass 1 is checkpointed too).
        when: for ``kill``: ``"before"`` exits on receipt of the pass
            request, ``"mid"`` exits after counting but before replying.
        delay: for ``delay``: seconds to stall the reply.
        count: for ``refuse-spawn``: respawn attempts to refuse.
    """

    kind: str
    worker: int = -1
    k: int = 0
    when: str = "before"
    delay: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            known = ", ".join(repr(k) for k in KINDS)
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of: {known}"
            )
        if self.kind in WORKER_KINDS:
            if self.worker < 0:
                raise ValueError(
                    f"{self.kind} fault needs a worker index >= 0, "
                    f"got {self.worker}"
                )
            if self.k < 2:
                raise ValueError(
                    f"{self.kind} fault needs a pass number k >= 2, "
                    f"got {self.k} (pass 1 never reaches the pool)"
                )
        if self.kind == "coord-kill" and self.k < 1:
            raise ValueError(
                f"coord-kill fault needs a pass number k >= 1, got {self.k}"
            )
        if self.when not in KILL_WHEN:
            raise ValueError(
                f"kill timing must be 'before' or 'mid', got {self.when!r}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.count < 1:
            raise ValueError(f"refusal count must be >= 1, got {self.count}")

    def format(self) -> str:
        """Render this event in the spec string syntax."""
        if self.kind == "refuse-spawn":
            return f"refuse-spawn:{self.count}"
        if self.kind == "coord-kill":
            return f"coord-kill:k{self.k}"
        base = f"{self.kind}@{self.worker}:k{self.k}"
        if self.kind == "kill" and self.when != "before":
            return f"{base}:{self.when}"
        if self.kind == "delay":
            return f"{base}:{self.delay:g}"
        return base


@dataclass(frozen=True)
class FaultRecord:
    """One observed failure and the recovery action taken.

    Attributes:
        k: pass during which the failure was detected.
        worker: index of the worker/processor that failed.
        failure: what was observed — ``"timeout"`` (no reply within the
            recv timeout), ``"died"`` (pipe EOF: crash or kill) or
            ``"corrupt"`` (malformed / wrong-length reply).
        action: how the block was recovered — ``"respawned"`` (fresh
            replacement process), ``"adopted"`` (a surviving worker took
            over the block), ``"inprocess"`` (counted in the parent;
            the degradation floor) or ``"repacked"`` (candidate-
            partitioned pool only: a worker died while adopting; its own
            pass counts were already collected, so nothing is recounted
            — the next pass simply bin-packs the candidate set over the
            remaining workers).
        attempts: spawn attempts consumed before the action succeeded.
    """

    k: int
    worker: int
    failure: str
    action: str
    attempts: int = 0


def _parse_event(token: str) -> FaultEvent:
    token = token.strip()
    if not token:
        raise ValueError("empty fault event")
    if token.startswith("refuse-spawn"):
        rest = token[len("refuse-spawn"):]
        if rest == "":
            return FaultEvent("refuse-spawn")
        if not rest.startswith(":"):
            raise ValueError(f"malformed fault event {token!r}")
        return FaultEvent("refuse-spawn", count=int(rest[1:]))
    if token.startswith("coord-kill"):
        rest = token[len("coord-kill"):]
        if not rest.startswith(":k"):
            raise ValueError(
                f"malformed fault event {token!r}; expected coord-kill:kN"
            )
        return FaultEvent("coord-kill", k=int(rest[2:]))
    if "@" not in token:
        raise ValueError(
            f"malformed fault event {token!r}; expected kind@worker:kN"
        )
    kind, _, rest = token.partition("@")
    parts = rest.split(":")
    if len(parts) < 2 or not parts[1].startswith("k"):
        raise ValueError(
            f"malformed fault event {token!r}; expected kind@worker:kN"
        )
    worker = int(parts[0])
    k = int(parts[1][1:])
    extra = parts[2] if len(parts) > 2 else None
    if len(parts) > 3:
        raise ValueError(f"malformed fault event {token!r}")
    if kind == "kill":
        return FaultEvent("kill", worker=worker, k=k, when=extra or "before")
    if kind == "delay":
        if extra is None:
            raise ValueError(
                f"delay event {token!r} needs seconds: delay@W:kK:SECONDS"
            )
        return FaultEvent("delay", worker=worker, k=k, delay=float(extra))
    if kind in ("corrupt", "error"):
        if extra is not None:
            raise ValueError(f"{kind} event {token!r} takes no extra field")
        return FaultEvent(kind, worker=worker, k=k)
    known = ", ".join(repr(x) for x in KINDS)
    raise ValueError(f"unknown fault kind {kind!r}; expected one of: {known}")


@dataclass(frozen=True)
class FaultSpec:
    """An immutable, ordered collection of fault events."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the comma-separated spec string syntax.

        Raises:
            ValueError: for malformed events or unknown kinds.
        """
        tokens = [t for t in (x.strip() for x in text.split(",")) if t]
        return cls(tuple(_parse_event(t) for t in tokens))

    @classmethod
    def of(cls, spec: "FaultSpec | str | None") -> "FaultSpec | None":
        """Coerce a spec-or-string-or-None into a spec (or ``None``)."""
        if spec is None or isinstance(spec, FaultSpec):
            return spec
        if isinstance(spec, str):
            return cls.parse(spec)
        raise TypeError(
            f"faults must be a FaultSpec, spec string or None, "
            f"got {type(spec).__name__}"
        )

    @classmethod
    def single_kills(
        cls,
        seed: int,
        num_workers: int,
        passes: Iterable[int],
        probability: float = 0.8,
    ) -> "FaultSpec":
        """Seeded random sequence of at-most-one kill per pass.

        For each pass in ``passes`` (each must be >= 2), with
        ``probability`` a uniformly chosen worker is killed, at a
        uniformly chosen point (``before``/``mid``).  Deterministic in
        ``seed`` — the property tests sweep seeds, not reruns.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        for k in passes:
            if rng.random() >= probability:
                continue
            events.append(
                FaultEvent(
                    "kill",
                    worker=rng.randrange(num_workers),
                    k=k,
                    when=rng.choice(KILL_WHEN),
                )
            )
        return cls(tuple(events))

    def format(self) -> str:
        """Render back to the spec string syntax (inverse of parse)."""
        return ",".join(event.format() for event in self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def worker_events(self, worker: int) -> List[FaultEvent]:
        """Worker-side events targeting one worker index, in order."""
        return [
            e
            for e in self.events
            if e.kind in WORKER_KINDS and e.worker == worker
        ]

    def refusals(self) -> int:
        """Total respawn attempts the pool must refuse."""
        return sum(e.count for e in self.events if e.kind == "refuse-spawn")

    def coordinator_kills(self) -> frozenset:
        """Passes after which the coordinator SIGKILLs itself."""
        return frozenset(
            e.k for e in self.events if e.kind == "coord-kill"
        )

    def advance(
        self, completed_k: int, refusals_consumed: int = 0
    ) -> "FaultSpec":
        """The spec as seen by a coordinator resuming after pass ``completed_k``.

        Drops every pass-targeted event (worker kinds and
        ``coord-kill``) with ``k <= completed_k`` — those passes are
        already journaled, so their failures must not replay — and
        decrements ``refuse-spawn`` budgets by the refusals the
        interrupted run already consumed (per the checkpoint cursor).
        Resuming under the *same* ``--fault-spec`` therefore continues
        the failure schedule instead of restarting it.
        """
        remaining = max(0, refusals_consumed)
        events: List[FaultEvent] = []
        for event in self.events:
            if event.kind == "refuse-spawn":
                used = min(event.count, remaining)
                remaining -= used
                if event.count > used:
                    events.append(replace(event, count=event.count - used))
            elif event.k > completed_k:
                events.append(event)
        return FaultSpec(tuple(events))

    def failing_at(self, k: int) -> List[int]:
        """Sorted processor indices with a ``kill`` event at pass ``k``.

        This is the view the simulated cluster's per-processor failure
        hook consumes (delay/corrupt/error have no simulated analogue:
        the cost model has no wire to corrupt).
        """
        return sorted(
            {e.worker for e in self.events if e.kind == "kill" and e.k == k}
        )

    def max_pass(self) -> int:
        """Largest pass number any worker event fires at (0 if none)."""
        return max(
            (e.k for e in self.events if e.kind in WORKER_KINDS), default=0
        )
